//! Learning-rate schedules and gradient clipping.
//!
//! The paper's training recipe (hybrid fine-tuning, Adam) conventionally
//! pairs with a step or cosine decay; these utilities apply any schedule
//! to any [`Optimizer`] and provide global-norm gradient clipping, which
//! stabilises from-scratch SNN training at aggressive skip percentiles.

use crate::optim::Optimizer;
use crate::params::ParamStore;

/// A learning-rate schedule: maps an epoch index to a multiplier of the
/// base learning rate.
pub trait LrSchedule {
    /// Multiplier applied to the base learning rate at `epoch`.
    fn factor(&self, epoch: usize) -> f32;
}

/// Constant learning rate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Constant;

impl LrSchedule for Constant {
    fn factor(&self, _epoch: usize) -> f32 {
        1.0
    }
}

/// Multiply by `gamma` every `every` epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepDecay {
    /// Epoch interval between decays.
    pub every: usize,
    /// Decay multiplier per step.
    pub gamma: f32,
}

impl LrSchedule for StepDecay {
    fn factor(&self, epoch: usize) -> f32 {
        self.gamma.powi((epoch / self.every.max(1)) as i32)
    }
}

/// Cosine annealing from 1 to `floor` over `total_epochs`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosineDecay {
    /// Horizon of the schedule.
    pub total_epochs: usize,
    /// Final multiplier.
    pub floor: f32,
}

impl LrSchedule for CosineDecay {
    fn factor(&self, epoch: usize) -> f32 {
        let t = (epoch as f32 / self.total_epochs.max(1) as f32).min(1.0);
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
        self.floor + (1.0 - self.floor) * cos
    }
}

/// Set `optimizer`'s learning rate for `epoch` given its `base_lr`.
pub fn apply_schedule(
    optimizer: &mut dyn Optimizer,
    schedule: &dyn LrSchedule,
    base_lr: f32,
    epoch: usize,
) {
    optimizer.set_learning_rate(base_lr * schedule.factor(epoch));
}

/// Clip the global gradient norm of `params` to `max_norm`. Returns the
/// pre-clip norm.
///
/// # Panics
///
/// Panics if `max_norm` is not positive.
pub fn clip_grad_norm(params: &mut ParamStore, max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let mut sq = 0.0f64;
    for p in params.iter() {
        sq += p
            .grad()
            .data()
            .iter()
            .map(|&g| (g as f64) * (g as f64))
            // lint:allow(float-order): sequential fold over one parameter tensor in storage order; identical on every path
            .sum::<f64>();
    }
    let norm = sq.sqrt() as f32;
    if norm > max_norm {
        let scale = max_norm / norm;
        for p in params.iter_mut() {
            p.grad_mut().scale_assign(scale);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;
    use skipper_tensor::Tensor;

    #[test]
    fn constant_is_one() {
        assert_eq!(Constant.factor(0), 1.0);
        assert_eq!(Constant.factor(100), 1.0);
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = StepDecay {
            every: 10,
            gamma: 0.5,
        };
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(9), 1.0);
        assert_eq!(s.factor(10), 0.5);
        assert_eq!(s.factor(25), 0.25);
    }

    #[test]
    fn cosine_decays_monotonically_to_floor() {
        let s = CosineDecay {
            total_epochs: 20,
            floor: 0.1,
        };
        assert!((s.factor(0) - 1.0).abs() < 1e-6);
        assert!((s.factor(20) - 0.1).abs() < 1e-6);
        assert!((s.factor(30) - 0.1).abs() < 1e-6, "clamped past horizon");
        let mut prev = f32::INFINITY;
        for e in 0..=20 {
            let f = s.factor(e);
            assert!(f <= prev + 1e-6);
            prev = f;
        }
    }

    #[test]
    fn apply_schedule_updates_optimizer() {
        let mut opt = Sgd::new(0.1);
        apply_schedule(
            &mut opt,
            &StepDecay {
                every: 5,
                gamma: 0.1,
            },
            0.1,
            5,
        );
        assert!((opt.learning_rate() - 0.01).abs() < 1e-8);
    }

    #[test]
    fn clip_rescales_only_when_needed() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::zeros([2]));
        store.accumulate_grad(id, &Tensor::from_vec(vec![3.0, 4.0], [2])); // norm 5
        let norm = clip_grad_norm(&mut store, 1.0);
        assert!((norm - 5.0).abs() < 1e-5);
        let g = store.param(id).grad();
        let clipped = (g.data()[0].powi(2) + g.data()[1].powi(2)).sqrt();
        assert!((clipped - 1.0).abs() < 1e-5);
        // Below the limit: untouched.
        store.zero_grads();
        store.accumulate_grad(id, &Tensor::from_vec(vec![0.3, 0.4], [2]));
        clip_grad_norm(&mut store, 1.0);
        assert_eq!(store.param(id).grad().data(), &[0.3, 0.4]);
    }
}
