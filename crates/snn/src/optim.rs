//! Optimizers over a [`ParamStore`].
//!
//! The paper trains everything with Adam (Section VII); its first/second
//! moments are why the "optimizer" share of the memory breakdowns is 2x
//! the weight size. Moments and momentum buffers are booked under
//! [`Category::OptimizerState`].
//!
//! [`Category::OptimizerState`]: skipper_memprof::Category::OptimizerState

use crate::params::ParamStore;
use skipper_memprof::{record_op, Category, CategoryGuard, OpKind};
use skipper_tensor::Tensor;

/// A gradient-descent update rule.
pub trait Optimizer {
    /// Apply one update using the gradients accumulated in `params`
    /// (does not zero them; call [`ParamStore::zero_grads`] afterwards).
    fn step(&mut self, params: &mut ParamStore);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Change the learning rate (schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Sgd {
        Sgd::with_momentum(lr, 0.0)
    }

    /// SGD with momentum `mu`.
    pub fn with_momentum(lr: f32, momentum: f32) -> Sgd {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamStore) {
        self.velocity.resize_with(params.len(), || None);
        for (i, p) in params.iter_mut().enumerate() {
            record_op(
                OpKind::Optimizer,
                2.0 * p.value().numel() as f64,
                3.0 * p.value().byte_size() as f64,
            );
            if self.momentum > 0.0 {
                let v = self.velocity[i].get_or_insert_with(|| {
                    let _c = CategoryGuard::new(Category::OptimizerState);
                    Tensor::zeros(p.value().shape().clone())
                });
                v.scale_assign(self.momentum);
                v.add_assign(p.grad());
                let update = v.clone();
                p.value_mut().add_scaled_assign(&update, -self.lr);
            } else {
                let g = p.grad().clone();
                p.value_mut().add_scaled_assign(&g, -self.lr);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2014), the paper's optimizer.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    moments: Vec<Option<(Tensor, Tensor)>>,
}

impl Adam {
    /// Adam with standard betas `(0.9, 0.999)`.
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            moments: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamStore) {
        self.t += 1;
        self.moments.resize_with(params.len(), || None);
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in params.iter_mut().enumerate() {
            record_op(
                OpKind::Optimizer,
                8.0 * p.value().numel() as f64,
                5.0 * p.value().byte_size() as f64,
            );
            let (m, v) = self.moments[i].get_or_insert_with(|| {
                let _c = CategoryGuard::new(Category::OptimizerState);
                (
                    Tensor::zeros(p.value().shape().clone()),
                    Tensor::zeros(p.value().shape().clone()),
                )
            });
            let g = p.grad().clone();
            m.scale_assign(self.beta1);
            m.add_scaled_assign(&g, 1.0 - self.beta1);
            v.scale_assign(self.beta2);
            let g2 = g.mul(&g);
            v.add_scaled_assign(&g2, 1.0 - self.beta2);
            let (lr, eps) = (self.lr, self.eps);
            let md = m.data();
            let vd = v.data();
            let w = p.value_mut().data_mut();
            for ((wi, &mi), &vi) in w.iter_mut().zip(md).zip(vd) {
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                *wi -= lr * mhat / (vhat.sqrt() + eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_store(x0: f32) -> (ParamStore, crate::params::ParamId) {
        let mut store = ParamStore::new();
        let id = store.add("x", Tensor::from_vec(vec![x0], [1]));
        (store, id)
    }

    /// Minimise f(x) = x² by feeding grad = 2x.
    fn optimise(opt: &mut dyn Optimizer, steps: usize, x0: f32) -> f32 {
        let (mut store, id) = quadratic_store(x0);
        for _ in 0..steps {
            store.zero_grads();
            let x = store.value(id).data()[0];
            store.accumulate_grad(id, &Tensor::from_vec(vec![2.0 * x], [1]));
            opt.step(&mut store);
        }
        store.value(id).data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = optimise(&mut Sgd::new(0.1), 100, 5.0);
        assert!(x.abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn momentum_outpaces_plain_sgd_early() {
        let plain = optimise(&mut Sgd::new(0.02), 20, 5.0);
        let momentum = optimise(&mut Sgd::with_momentum(0.02, 0.9), 20, 5.0);
        assert!(momentum.abs() < plain.abs());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = optimise(&mut Adam::new(0.3), 200, 5.0);
        assert!(x.abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_moments_booked_as_optimizer_state() {
        use skipper_memprof as mp;
        mp::reset_all();
        let (mut store, id) = quadratic_store(1.0);
        let mut adam = Adam::new(0.1);
        store.accumulate_grad(id, &Tensor::ones([1]));
        adam.step(&mut store);
        // Two moments of one f32 each.
        assert_eq!(mp::snapshot().live(mp::Category::OptimizerState), 8);
        drop((store, adam));
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut opt = Adam::new(0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}
