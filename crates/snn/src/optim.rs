//! Optimizers over a [`ParamStore`].
//!
//! The paper trains everything with Adam (Section VII); its first/second
//! moments are why the "optimizer" share of the memory breakdowns is 2x
//! the weight size. Moments and momentum buffers are booked under
//! [`Category::OptimizerState`].
//!
//! [`Category::OptimizerState`]: skipper_memprof::Category::OptimizerState

use crate::error::SnnError;
use crate::params::ParamStore;
use skipper_memprof::{record_op, Category, CategoryGuard, OpKind};
use skipper_tensor::Tensor;

/// Portable optimizer state, as captured for durable session snapshots
/// and in-memory divergence rollback.
///
/// The representation is deliberately generic — a kind tag, named scalar
/// hyper-parameters/counters and named state tensors — so a snapshot file
/// does not need per-optimizer record formats, and an optimizer restored
/// from it is **bit-exact**: resuming training reproduces the exact update
/// sequence of an uninterrupted run.
#[derive(Debug, Clone, Default)]
pub struct OptimizerState {
    /// Which optimizer produced this state (`"sgd"` or `"adam"`).
    pub kind: String,
    /// Named scalars (learning rate, betas, step counter, slot count, …).
    pub scalars: Vec<(String, f64)>,
    /// Named state tensors (momentum / moment buffers), keyed by slot.
    pub tensors: Vec<(String, Tensor)>,
}

impl OptimizerState {
    /// Look up a named scalar.
    pub fn scalar(&self, name: &str) -> Option<f64> {
        self.scalars
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// A named scalar that must be present.
    fn require(&self, name: &str) -> Result<f64, SnnError> {
        self.scalar(name)
            .ok_or_else(|| SnnError::Format(format!("optimizer state is missing scalar '{name}'")))
    }

    /// Check the kind tag before importing.
    fn expect_kind(&self, kind: &str) -> Result<(), SnnError> {
        if self.kind == kind {
            Ok(())
        } else {
            Err(SnnError::Mismatch(format!(
                "optimizer state is for '{}', not '{kind}'",
                self.kind
            )))
        }
    }
}

/// Rebuild a `Vec<Option<Tensor>>` slot array from named tensors with the
/// given per-slot prefix, booking the clones as optimizer state so resumed
/// sessions account memory exactly like uninterrupted ones.
fn slots_from_state(
    state: &OptimizerState,
    prefix: &str,
    len: usize,
) -> Result<Vec<Option<Tensor>>, SnnError> {
    let mut slots: Vec<Option<Tensor>> = (0..len).map(|_| None).collect();
    for (name, tensor) in &state.tensors {
        if let Some(rest) = name.strip_prefix(prefix) {
            let i: usize = rest
                .parse()
                .map_err(|_| SnnError::Format(format!("bad optimizer tensor name '{name}'")))?;
            if i >= len {
                return Err(SnnError::Format(format!(
                    "optimizer tensor '{name}' out of range (slots = {len})"
                )));
            }
            let _c = CategoryGuard::new(Category::OptimizerState);
            slots[i] = Some(Tensor::from_vec(
                tensor.data().to_vec(),
                tensor.shape().dims().to_vec(),
            ));
        }
    }
    Ok(slots)
}

/// A gradient-descent update rule.
pub trait Optimizer {
    /// Apply one update using the gradients accumulated in `params`
    /// (does not zero them; call [`ParamStore::zero_grads`] afterwards).
    fn step(&mut self, params: &mut ParamStore);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Change the learning rate (schedules).
    fn set_learning_rate(&mut self, lr: f32);

    /// Capture the complete update-rule state (hyper-parameters, step
    /// counters and moment buffers) for snapshots or rollback.
    fn export_state(&self) -> OptimizerState;

    /// Restore state captured by [`export_state`], making subsequent
    /// updates bit-identical to the exporting optimizer's.
    ///
    /// # Errors
    ///
    /// Fails if `state` was exported by a different optimizer kind or is
    /// structurally inconsistent (bad tensor names, out-of-range slots).
    ///
    /// [`export_state`]: Optimizer::export_state
    fn import_state(&mut self, state: &OptimizerState) -> Result<(), SnnError>;
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Sgd {
        Sgd::with_momentum(lr, 0.0)
    }

    /// SGD with momentum `mu`.
    pub fn with_momentum(lr: f32, momentum: f32) -> Sgd {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamStore) {
        let _span = skipper_obs::span!("sgd_step", params = params.len());
        self.velocity.resize_with(params.len(), || None);
        for (i, p) in params.iter_mut().enumerate() {
            record_op(
                OpKind::Optimizer,
                2.0 * p.value().numel() as f64,
                3.0 * p.value().byte_size() as f64,
            );
            if self.momentum > 0.0 {
                let v = self.velocity[i].get_or_insert_with(|| {
                    let _c = CategoryGuard::new(Category::OptimizerState);
                    Tensor::zeros(p.value().shape().clone())
                });
                v.scale_assign(self.momentum);
                v.add_assign(p.grad());
                let update = v.clone();
                p.value_mut().add_scaled_assign(&update, -self.lr);
            } else {
                let g = p.grad().clone();
                p.value_mut().add_scaled_assign(&g, -self.lr);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn export_state(&self) -> OptimizerState {
        let mut state = OptimizerState {
            kind: "sgd".into(),
            scalars: vec![
                ("lr".into(), f64::from(self.lr)),
                ("momentum".into(), f64::from(self.momentum)),
                ("slots".into(), self.velocity.len() as f64),
            ],
            tensors: Vec::new(),
        };
        for (i, v) in self.velocity.iter().enumerate() {
            if let Some(v) = v {
                state.tensors.push((format!("v{i}"), v.clone()));
            }
        }
        state
    }

    fn import_state(&mut self, state: &OptimizerState) -> Result<(), SnnError> {
        state.expect_kind("sgd")?;
        let slots = state.require("slots")? as usize;
        self.lr = state.require("lr")? as f32;
        self.momentum = state.require("momentum")? as f32;
        self.velocity = slots_from_state(state, "v", slots)?;
        Ok(())
    }
}

/// Adam (Kingma & Ba, 2014), the paper's optimizer.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    moments: Vec<Option<(Tensor, Tensor)>>,
}

impl Adam {
    /// Adam with standard betas `(0.9, 0.999)`.
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            moments: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamStore) {
        let _span = skipper_obs::span!("adam_step", params = params.len());
        self.t += 1;
        self.moments.resize_with(params.len(), || None);
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in params.iter_mut().enumerate() {
            record_op(
                OpKind::Optimizer,
                8.0 * p.value().numel() as f64,
                5.0 * p.value().byte_size() as f64,
            );
            let (m, v) = self.moments[i].get_or_insert_with(|| {
                let _c = CategoryGuard::new(Category::OptimizerState);
                (
                    Tensor::zeros(p.value().shape().clone()),
                    Tensor::zeros(p.value().shape().clone()),
                )
            });
            let g = p.grad().clone();
            m.scale_assign(self.beta1);
            m.add_scaled_assign(&g, 1.0 - self.beta1);
            v.scale_assign(self.beta2);
            let g2 = g.mul(&g);
            v.add_scaled_assign(&g2, 1.0 - self.beta2);
            let (lr, eps) = (self.lr, self.eps);
            let md = m.data();
            let vd = v.data();
            let w = p.value_mut().data_mut();
            for ((wi, &mi), &vi) in w.iter_mut().zip(md).zip(vd) {
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                *wi -= lr * mhat / (vhat.sqrt() + eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn export_state(&self) -> OptimizerState {
        let mut state = OptimizerState {
            kind: "adam".into(),
            scalars: vec![
                ("lr".into(), f64::from(self.lr)),
                ("beta1".into(), f64::from(self.beta1)),
                ("beta2".into(), f64::from(self.beta2)),
                ("eps".into(), f64::from(self.eps)),
                ("t".into(), self.t as f64),
                ("slots".into(), self.moments.len() as f64),
            ],
            tensors: Vec::new(),
        };
        for (i, mv) in self.moments.iter().enumerate() {
            if let Some((m, v)) = mv {
                state.tensors.push((format!("m{i}"), m.clone()));
                state.tensors.push((format!("v{i}"), v.clone()));
            }
        }
        state
    }

    fn import_state(&mut self, state: &OptimizerState) -> Result<(), SnnError> {
        state.expect_kind("adam")?;
        let slots = state.require("slots")? as usize;
        self.lr = state.require("lr")? as f32;
        self.beta1 = state.require("beta1")? as f32;
        self.beta2 = state.require("beta2")? as f32;
        self.eps = state.require("eps")? as f32;
        self.t = state.require("t")? as u64;
        let ms = slots_from_state(state, "m", slots)?;
        let vs = slots_from_state(state, "v", slots)?;
        self.moments = ms
            .into_iter()
            .zip(vs)
            .enumerate()
            .map(|(i, pair)| match pair {
                (Some(m), Some(v)) => Ok(Some((m, v))),
                (None, None) => Ok(None),
                _ => Err(SnnError::Format(format!(
                    "adam state has unpaired moment tensors at slot {i}"
                ))),
            })
            .collect::<Result<_, _>>()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_store(x0: f32) -> (ParamStore, crate::params::ParamId) {
        let mut store = ParamStore::new();
        let id = store.add("x", Tensor::from_vec(vec![x0], [1]));
        (store, id)
    }

    /// Minimise f(x) = x² by feeding grad = 2x.
    fn optimise(opt: &mut dyn Optimizer, steps: usize, x0: f32) -> f32 {
        let (mut store, id) = quadratic_store(x0);
        for _ in 0..steps {
            store.zero_grads();
            let x = store.value(id).data()[0];
            store.accumulate_grad(id, &Tensor::from_vec(vec![2.0 * x], [1]));
            opt.step(&mut store);
        }
        store.value(id).data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = optimise(&mut Sgd::new(0.1), 100, 5.0);
        assert!(x.abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn momentum_outpaces_plain_sgd_early() {
        let plain = optimise(&mut Sgd::new(0.02), 20, 5.0);
        let momentum = optimise(&mut Sgd::with_momentum(0.02, 0.9), 20, 5.0);
        assert!(momentum.abs() < plain.abs());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = optimise(&mut Adam::new(0.3), 200, 5.0);
        assert!(x.abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_moments_booked_as_optimizer_state() {
        use skipper_memprof as mp;
        mp::reset_all();
        let (mut store, id) = quadratic_store(1.0);
        let mut adam = Adam::new(0.1);
        store.accumulate_grad(id, &Tensor::ones([1]));
        adam.step(&mut store);
        // Two moments of one f32 each.
        assert_eq!(mp::snapshot().live(mp::Category::OptimizerState), 8);
        drop((store, adam));
    }

    /// Resume `opt2` from `opt1`'s exported state mid-run; both must then
    /// produce bit-identical trajectories.
    fn check_resume_bit_exact(mut fresh: impl FnMut() -> Box<dyn Optimizer>) {
        let (mut store_a, id_a) = quadratic_store(5.0);
        let mut opt_a = fresh();
        let run = |store: &mut ParamStore, id, opt: &mut dyn Optimizer, steps: usize| {
            for _ in 0..steps {
                store.zero_grads();
                let x = store.value(id).data()[0];
                store.accumulate_grad(id, &Tensor::from_vec(vec![2.0 * x], [1]));
                opt.step(store);
            }
        };
        run(&mut store_a, id_a, opt_a.as_mut(), 7);
        // Clone the world into a resumed twin.
        let (mut store_b, id_b) = quadratic_store(store_a.value(id_a).data()[0]);
        let mut opt_b = fresh();
        opt_b.import_state(&opt_a.export_state()).unwrap();
        run(&mut store_a, id_a, opt_a.as_mut(), 5);
        run(&mut store_b, id_b, opt_b.as_mut(), 5);
        assert_eq!(
            store_a.value(id_a).data()[0].to_bits(),
            store_b.value(id_b).data()[0].to_bits(),
            "resumed optimizer must be bit-exact"
        );
    }

    #[test]
    fn adam_state_roundtrip_is_bit_exact() {
        check_resume_bit_exact(|| Box::new(Adam::new(0.05)));
    }

    #[test]
    fn sgd_state_roundtrip_is_bit_exact() {
        check_resume_bit_exact(|| Box::new(Sgd::with_momentum(0.05, 0.9)));
    }

    #[test]
    fn import_rejects_wrong_kind() {
        let state = Sgd::new(0.1).export_state();
        let err = Adam::new(0.1).import_state(&state).unwrap_err();
        assert!(err.to_string().contains("'sgd'"), "{err}");
    }

    #[test]
    fn imported_moments_booked_as_optimizer_state() {
        use skipper_memprof as mp;
        let (mut store, id) = quadratic_store(1.0);
        let mut adam = Adam::new(0.1);
        store.accumulate_grad(id, &Tensor::ones([1]));
        adam.step(&mut store);
        let state = adam.export_state();
        mp::reset_all();
        let mut resumed = Adam::new(0.1);
        resumed.import_state(&state).unwrap();
        assert_eq!(mp::snapshot().live(mp::Category::OptimizerState), 8);
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut opt = Adam::new(0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}
