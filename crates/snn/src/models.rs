//! The network topologies evaluated in the paper.
//!
//! Table I of the paper lists five workloads — VGG5 (conv3+lin3), VGG11
//! (conv9+lin3), ResNet20 (conv20+lin1), LeNet (conv5+lin1) and a custom
//! network (conv3+lin1) — plus AlexNet for the TBPTT-LBP comparison
//! (Table II / Fig. 16) and ResNet34 for the ImageNet motivation study
//! (Fig. 4). All constructors take a [`ModelConfig`] whose `width_mult`
//! scales channel counts: layer *counts* and therefore the paper's
//! `T/L_n` trade-off (Eq. 7) are preserved at any width, while absolute
//! bytes/FLOPs shrink to laptop scale (see `DESIGN.md`).

use crate::layers::{Conv2dLayer, LinearLayer};
use crate::lif::LifConfig;
use crate::network::{LifUnit, Module, SpikingNetwork};
use crate::params::ParamStore;
use skipper_tensor::{Conv2dSpec, XorShiftRng};

/// Shared knobs of every model constructor.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Input height = width, pixels.
    pub input_hw: usize,
    /// Input channels (3 for rate-coded RGB, 2 for DVS polarity).
    pub in_channels: usize,
    /// Output classes.
    pub num_classes: usize,
    /// Channel-width multiplier (1.0 = paper widths).
    pub width_mult: f32,
    /// Neuron parameters applied to every LIF population.
    pub lif: LifConfig,
    /// Dropout on hidden dense layers (`None` disables).
    pub dropout: Option<f32>,
    /// Weight-initialisation seed.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            input_hw: 32,
            in_channels: 3,
            num_classes: 10,
            width_mult: 1.0,
            lif: LifConfig::default(),
            dropout: None,
            seed: 0xC0FFEE,
        }
    }
}

impl ModelConfig {
    /// Scaled channel count (at least 1).
    fn ch(&self, base: usize) -> usize {
        ((base as f32 * self.width_mult).round() as usize).max(1)
    }
}

/// Incremental topology builder with shape tracking.
struct NetBuilder {
    params: ParamStore,
    modules: Vec<Module>,
    state_shapes: Vec<Vec<usize>>,
    lif: LifConfig,
    rng: XorShiftRng,
    /// Current spatial shape, if any.
    chw: Option<(usize, usize, usize)>,
    /// Current flat feature count, if flattened.
    flat: Option<usize>,
    next_name: usize,
}

impl NetBuilder {
    fn new(cfg: &ModelConfig) -> NetBuilder {
        NetBuilder {
            params: ParamStore::new(),
            modules: Vec::new(),
            state_shapes: Vec::new(),
            lif: cfg.lif,
            rng: XorShiftRng::new(cfg.seed),
            chw: Some((cfg.in_channels, cfg.input_hw, cfg.input_hw)),
            flat: None,
            next_name: 0,
        }
    }

    fn name(&mut self, prefix: &str) -> String {
        let n = self.next_name;
        self.next_name += 1;
        format!("{prefix}{n}")
    }

    fn lif_unit(&mut self, shape: Vec<usize>) -> LifUnit {
        self.state_shapes.push(shape);
        LifUnit {
            cfg: self.lif,
            state_id: self.state_shapes.len() - 1,
        }
    }

    fn conv_lif(&mut self, out_c: usize, k: usize, spec: Conv2dSpec, pool: Option<usize>) {
        // lint:allow(panic): topology builder invariant: conv follows a spatial layer; misuse fails fast in model-construction tests
        let (c, h, w) = self.chw.expect("conv on spatial input");
        let name = self.name("conv");
        let conv = Conv2dLayer::new(
            &mut self.params,
            &name,
            c,
            out_c,
            k,
            spec,
            true,
            &mut self.rng,
        );
        let (ho, wo) = conv.out_hw(h, w);
        let lif = self.lif_unit(vec![out_c, ho, wo]);
        let (ho, wo) = match pool {
            Some(p) => (ho / p, wo / p),
            None => (ho, wo),
        };
        self.modules.push(Module::ConvLif { conv, lif, pool });
        self.chw = Some((out_c, ho, wo));
    }

    /// Conv with 3x3 kernel, padding 1, optional 2x pool — the standard
    /// VGG-style stage. Pooling is skipped automatically once the feature
    /// map cannot be halved, so topologies stay valid at small input sizes.
    fn vgg_stage(&mut self, out_c: usize, pool: bool) {
        // lint:allow(panic): topology builder invariant: preceding layer is spatial
        let (_, h, _) = self.chw.expect("spatial");
        let pool = (pool && h >= 2 && h % 2 == 0).then_some(2);
        self.conv_lif(out_c, 3, Conv2dSpec::padded(1), pool);
    }

    fn residual(&mut self, out_c: usize, stride: usize) {
        // lint:allow(panic): topology builder invariant: residual follows a spatial layer
        let (c, h, w) = self.chw.expect("residual on spatial input");
        let n1 = self.name("res_conv");
        let conv1 = Conv2dLayer::new(
            &mut self.params,
            &n1,
            c,
            out_c,
            3,
            Conv2dSpec { stride, padding: 1 },
            true,
            &mut self.rng,
        );
        let (h1, w1) = conv1.out_hw(h, w);
        let lif1 = self.lif_unit(vec![out_c, h1, w1]);
        let n2 = self.name("res_conv");
        let conv2 = Conv2dLayer::new(
            &mut self.params,
            &n2,
            out_c,
            out_c,
            3,
            Conv2dSpec::padded(1),
            true,
            &mut self.rng,
        );
        let shortcut = (stride != 1 || c != out_c).then(|| {
            let n = self.name("res_proj");
            Conv2dLayer::new(
                &mut self.params,
                &n,
                c,
                out_c,
                1,
                Conv2dSpec { stride, padding: 0 },
                false,
                &mut self.rng,
            )
        });
        let lif2 = self.lif_unit(vec![out_c, h1, w1]);
        self.modules.push(Module::Residual {
            conv1,
            lif1,
            conv2,
            shortcut,
            lif2,
        });
        self.chw = Some((out_c, h1, w1));
    }

    fn pool(&mut self, k: usize) {
        // lint:allow(panic): topology builder invariant: pool follows a spatial layer
        let (c, h, w) = self.chw.expect("pool on spatial input");
        self.modules.push(Module::Pool(k));
        self.chw = Some((c, h / k, w / k));
    }

    fn flatten(&mut self) {
        // lint:allow(panic): topology builder invariant: flatten follows a spatial layer
        let (c, h, w) = self.chw.take().expect("flatten on spatial input");
        self.flat = Some(c * h * w);
        self.modules.push(Module::Flatten);
    }

    fn linear_lif(&mut self, out: usize, dropout: Option<f32>) {
        // lint:allow(panic): topology builder invariant: linear follows flatten or another flat layer
        let inf = self.flat.expect("linear on flat input");
        let name = self.name("fc");
        let lin = LinearLayer::new(&mut self.params, &name, inf, out, true, &mut self.rng);
        let lif = self.lif_unit(vec![out]);
        self.modules.push(Module::LinearLif { lin, lif, dropout });
        self.flat = Some(out);
    }

    fn finish(mut self, name: &str, cfg: &ModelConfig) -> SpikingNetwork {
        if self.flat.is_none() {
            self.flatten();
        }
        // lint:allow(panic): topology builder invariant: output follows a flat layer
        let inf = self.flat.expect("flat before output");
        let lin = LinearLayer::new(
            &mut self.params,
            "readout",
            inf,
            cfg.num_classes,
            true,
            &mut self.rng,
        );
        self.modules.push(Module::Output(lin));
        SpikingNetwork::from_parts(
            name,
            self.modules,
            self.params,
            self.state_shapes,
            vec![cfg.in_channels, cfg.input_hw, cfg.input_hw],
            cfg.num_classes,
        )
    }
}

/// VGG5: conv(3) + lin(3). Paper workload for CIFAR-10, `T = 100`.
pub fn vgg5(cfg: &ModelConfig) -> SpikingNetwork {
    let mut b = NetBuilder::new(cfg);
    b.vgg_stage(cfg.ch(64), true);
    b.vgg_stage(cfg.ch(128), true);
    b.vgg_stage(cfg.ch(128), true);
    b.flatten();
    b.linear_lif(cfg.ch(256), cfg.dropout);
    b.linear_lif(cfg.ch(256), cfg.dropout);
    b.finish("vgg5", cfg)
}

/// VGG11: conv(9) + lin(3). Paper workload for CIFAR-100, `T = 125`.
pub fn vgg11(cfg: &ModelConfig) -> SpikingNetwork {
    let mut b = NetBuilder::new(cfg);
    let plan: [(usize, bool); 9] = [
        (64, true),
        (128, true),
        (256, false),
        (256, true),
        (512, false),
        (512, true),
        (512, false),
        (512, false),
        (512, true),
    ];
    for (ch, pool) in plan {
        b.vgg_stage(cfg.ch(ch), pool);
    }
    b.flatten();
    b.linear_lif(cfg.ch(512), cfg.dropout);
    b.linear_lif(cfg.ch(512), cfg.dropout);
    b.finish("vgg11", cfg)
}

/// ResNet20: conv(20) + lin(1). Paper workload for CIFAR-10, `T = 250`.
pub fn resnet20(cfg: &ModelConfig) -> SpikingNetwork {
    let mut b = NetBuilder::new(cfg);
    b.conv_lif(cfg.ch(16), 3, Conv2dSpec::padded(1), None);
    for (stage, ch) in [16usize, 32, 64].into_iter().enumerate() {
        for block in 0..3 {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            b.residual(cfg.ch(ch), stride);
        }
    }
    // Global average pool to 1x1.
    // lint:allow(panic): lenet5 wiring keeps this block spatial
    let (_, h, _) = b.chw.expect("spatial");
    if h > 1 {
        b.pool(h);
    }
    b.finish("resnet20", cfg)
}

/// LeNet variant: conv(5) + lin(1). Paper workload for DVS-Gesture,
/// `T = 400` (event-camera input, 2 polarity channels).
pub fn lenet5(cfg: &ModelConfig) -> SpikingNetwork {
    let mut b = NetBuilder::new(cfg);
    for ch in [16usize, 32, 64, 64, 128] {
        b.vgg_stage(cfg.ch(ch), true);
    }
    b.finish("lenet5", cfg)
}

/// custom-Net: conv(3) + lin(1). Paper workload for N-MNIST, `T = 300`.
pub fn custom_net(cfg: &ModelConfig) -> SpikingNetwork {
    let mut b = NetBuilder::new(cfg);
    for ch in [16usize, 32, 64] {
        b.vgg_stage(cfg.ch(ch), true);
    }
    b.finish("custom-net", cfg)
}

/// AlexNet (CIFAR variant of Guo et al. \[28\]): conv(5) + lin(3). Used for
/// the TBPTT-LBP comparison (Table II, Fig. 16).
pub fn alexnet(cfg: &ModelConfig) -> SpikingNetwork {
    let mut b = NetBuilder::new(cfg);
    b.vgg_stage(cfg.ch(96), true);
    b.vgg_stage(cfg.ch(256), true);
    b.vgg_stage(cfg.ch(384), false);
    b.vgg_stage(cfg.ch(384), false);
    b.vgg_stage(cfg.ch(256), true);
    b.flatten();
    b.linear_lif(cfg.ch(1024), cfg.dropout);
    b.linear_lif(cfg.ch(1024), cfg.dropout);
    b.finish("alexnet", cfg)
}

/// ResNet34 at ImageNet geometry (224x224), used *analytically* for the
/// paper's Fig. 4 — constructing it is cheap; training it is not intended.
pub fn resnet34(cfg: &ModelConfig) -> SpikingNetwork {
    let mut b = NetBuilder::new(cfg);
    // 7x7/2 stem + 2x2 pool (stand-in for the 3x3/2 max pool).
    b.conv_lif(
        cfg.ch(64),
        7,
        Conv2dSpec {
            stride: 2,
            padding: 3,
        },
        Some(2),
    );
    for (stage, (ch, blocks)) in [(64usize, 3usize), (128, 4), (256, 6), (512, 3)]
        .into_iter()
        .enumerate()
    {
        for block in 0..blocks {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            b.residual(cfg.ch(ch), stride);
        }
    }
    // lint:allow(panic): vgg9 wiring keeps this block spatial
    let (_, h, _) = b.chw.expect("spatial");
    if h > 1 {
        b.pool(h);
    }
    b.finish("resnet34", cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(width: f32) -> ModelConfig {
        ModelConfig {
            width_mult: width,
            ..ModelConfig::default()
        }
    }

    #[test]
    fn layer_counts_match_table_1() {
        let cfg = small(0.125);
        assert_eq!(vgg5(&cfg).spiking_layer_count(), 3 + 2); // conv3 + 2 hidden lin
        assert_eq!(vgg11(&cfg).spiking_layer_count(), 9 + 2);
        assert_eq!(resnet20(&cfg).spiking_layer_count(), 1 + 18);
        assert_eq!(lenet5(&cfg).spiking_layer_count(), 5);
        assert_eq!(custom_net(&cfg).spiking_layer_count(), 3);
        assert_eq!(alexnet(&cfg).spiking_layer_count(), 5 + 2);
    }

    #[test]
    fn width_mult_scales_params() {
        let narrow = vgg5(&small(0.125)).param_scalars();
        let wide = vgg5(&small(0.25)).param_scalars();
        assert!(wide > 2 * narrow, "wide {wide} vs narrow {narrow}");
    }

    #[test]
    fn networks_run_one_step() {
        use crate::network::StepCtx;
        use skipper_tensor::Tensor;
        let cfg = ModelConfig {
            input_hw: 16,
            width_mult: 0.125,
            ..ModelConfig::default()
        };
        for net in [
            vgg5(&cfg),
            vgg11(&cfg),
            resnet20(&cfg),
            lenet5(&cfg),
            custom_net(&cfg),
            alexnet(&cfg),
        ] {
            let input = Tensor::ones([2, 3, 16, 16]);
            let mut state = net.init_state(2);
            let out = net.step_infer(&input, &mut state, &StepCtx::eval(0));
            assert_eq!(
                out.logits.shape().dims(),
                &[2, 10],
                "{} logits shape",
                net.name()
            );
            assert!(out.spike_sum.is_finite());
        }
    }

    #[test]
    fn resnet34_shapes_are_imagenet_scale() {
        let cfg = ModelConfig {
            input_hw: 224,
            width_mult: 0.03125, // tiny for the test; geometry is what matters
            num_classes: 1000,
            ..ModelConfig::default()
        };
        let net = resnet34(&cfg);
        assert_eq!(net.spiking_layer_count(), 1 + 2 * (3 + 4 + 6 + 3));
        // First state shape: 64-scaled channels at 112x112.
        assert_eq!(net.state_shapes()[0][1], 112);
    }

    #[test]
    fn dropout_config_reaches_linear_layers() {
        let cfg = ModelConfig {
            dropout: Some(0.5),
            width_mult: 0.125,
            ..ModelConfig::default()
        };
        let net = vgg5(&cfg);
        let has_dropout = net
            .modules()
            .iter()
            .any(|m| matches!(m, Module::LinearLif { dropout: Some(p), .. } if *p == 0.5));
        assert!(has_dropout);
    }
}
