//! ANN execution mode and hybrid pre-training (the paper's training
//! recipe, following Rathi et al., ref. \[37\]).
//!
//! The paper pre-initialises every frame-based SNN "with the corresponding
//! pre-trained ANN weights and then train\[s\] it further to fit the
//! network on spiking inputs" (Section VII). This module runs the *same*
//! [`SpikingNetwork`] — same modules, same [`ParamStore`] — as a
//! conventional ANN: every LIF becomes a ReLU, time disappears, and
//! training is ordinary backprop on the analog frames. Because the weights
//! are shared, finishing ANN pre-training leaves the SNN pre-initialised;
//! a threshold calibration pass (see [`crate::calibrate`]) then completes
//! the standard ANN-to-SNN conversion step.

use crate::loss::softmax_cross_entropy;
use crate::network::{Module, SpikingNetwork};
use crate::optim::Optimizer;
use crate::params::ParamBinder;
use skipper_autograd::{Graph, Var};
use skipper_tensor::Tensor;

/// Run the network's modules as an ANN (LIF → ReLU) and return the logits
/// variable.
pub fn ann_logits_taped(
    net: &SpikingNetwork,
    g: &mut Graph,
    binder: &mut ParamBinder,
    input: &Tensor,
) -> Var {
    let mut x = g.leaf(input.clone(), false);
    let mut logits = None;
    for m in net.modules() {
        match m {
            Module::ConvLif { conv, pool, .. } => {
                let c = conv.forward_taped(g, binder, net.params(), x);
                let r = g.relu(c);
                x = match pool {
                    Some(k) => g.avg_pool2d(r, *k),
                    None => r,
                };
            }
            Module::LinearLif { lin, .. } => {
                let c = lin.forward_taped(g, binder, net.params(), x);
                x = g.relu(c);
            }
            Module::Residual {
                conv1,
                conv2,
                shortcut,
                ..
            } => {
                let c1 = conv1.forward_taped(g, binder, net.params(), x);
                let r1 = g.relu(c1);
                let c2 = conv2.forward_taped(g, binder, net.params(), r1);
                let sc = match shortcut {
                    Some(p) => p.forward_taped(g, binder, net.params(), x),
                    None => x,
                };
                let sum = g.add(c2, sc);
                x = g.relu(sum);
            }
            Module::Pool(k) => x = g.avg_pool2d(x, *k),
            Module::Flatten => {
                let b = g.value(x).shape()[0];
                let n = g.value(x).numel() / b;
                x = g.reshape(x, [b, n]);
            }
            Module::Output(lin) => {
                logits = Some(lin.forward_taped(g, binder, net.params(), x));
            }
        }
    }
    // lint:allow(panic): network validation guarantees a trailing Output layer that sets logits
    logits.expect("network ends with Output")
}

/// One ANN training step on analog frames `[B,C,H,W]`. Returns
/// `(loss, correct)`. Gradients are applied by `optimizer` and cleared.
pub fn ann_train_batch(
    net: &mut SpikingNetwork,
    optimizer: &mut dyn Optimizer,
    frames: &Tensor,
    labels: &[usize],
) -> (f64, usize) {
    let mut g = Graph::new();
    let mut binder = ParamBinder::new(net.params());
    let logits = ann_logits_taped(net, &mut g, &mut binder, frames);
    let loss = softmax_cross_entropy(g.value(logits), labels);
    g.seed_grad(logits, loss.dlogits.clone());
    g.backward();
    binder.harvest(&mut g, net.params_mut());
    optimizer.step(net.params_mut());
    net.params_mut().zero_grads();
    (loss.loss, loss.correct)
}

/// ANN accuracy on analog frames (no gradients).
pub fn ann_eval_batch(net: &SpikingNetwork, frames: &Tensor, labels: &[usize]) -> usize {
    let mut g = Graph::new();
    let mut binder = ParamBinder::new(net.params());
    let logits = ann_logits_taped(net, &mut g, &mut binder, frames);
    g.value(logits)
        .argmax_rows()
        .iter()
        .zip(labels)
        .filter(|(p, l)| *p == *l)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{custom_net, resnet20, vgg5, ModelConfig};
    use crate::optim::Adam;
    use skipper_tensor::XorShiftRng;

    fn cfg() -> ModelConfig {
        ModelConfig {
            input_hw: 8,
            width_mult: 0.25,
            ..ModelConfig::default()
        }
    }

    #[test]
    fn ann_forward_produces_logits_for_all_topologies() {
        let mut rng = XorShiftRng::new(1);
        let frames = Tensor::rand([2, 3, 8, 8], &mut rng);
        for net in [custom_net(&cfg()), vgg5(&cfg()), resnet20(&cfg())] {
            let mut g = Graph::new();
            let mut binder = ParamBinder::new(net.params());
            let logits = ann_logits_taped(&net, &mut g, &mut binder, &frames);
            assert_eq!(g.value(logits).shape().dims(), &[2, 10], "{}", net.name());
        }
    }

    #[test]
    fn ann_memorises_a_small_batch() {
        let mut net = custom_net(&cfg());
        let mut opt = Adam::new(5e-3);
        let mut rng = XorShiftRng::new(2);
        let frames = Tensor::rand([8, 3, 8, 8], &mut rng);
        let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
        let first = ann_train_batch(&mut net, &mut opt, &frames, &labels).0;
        for _ in 0..80 {
            ann_train_batch(&mut net, &mut opt, &frames, &labels);
        }
        let (last, correct) = ann_train_batch(&mut net, &mut opt, &frames, &labels);
        assert!(last < first * 0.5, "loss {first} -> {last}");
        assert!(correct >= 6, "memorisation: {correct}/8");
    }

    #[test]
    fn ann_training_changes_shared_snn_weights() {
        use crate::network::StepCtx;
        let mut net = custom_net(&cfg());
        let mut rng = XorShiftRng::new(3);
        let frames = Tensor::rand([2, 3, 8, 8], &mut rng);
        let spike_in = frames.map(|x| (x > 0.5) as i32 as f32);
        let mut state = net.init_state(2);
        let before = net
            .step_infer(&spike_in, &mut state, &StepCtx::eval(0))
            .logits;
        let mut opt = Adam::new(1e-2);
        ann_train_batch(&mut net, &mut opt, &frames, &[0, 1]);
        let mut state = net.init_state(2);
        let after = net
            .step_infer(&spike_in, &mut state, &StepCtx::eval(0))
            .logits;
        assert!(
            !before.allclose(&after, 1e-9),
            "SNN must see the ANN's weight updates"
        );
    }

    #[test]
    fn relu_gradcheck_through_ann_graph() {
        use skipper_autograd::gradcheck::gradcheck;
        let mut rng = XorShiftRng::new(4);
        // Shift inputs away from the ReLU kink for finite differences.
        let x = Tensor::randn([3], &mut rng).map(|v| v + if v >= 0.0 { 0.5 } else { -0.5 });
        gradcheck(
            &[x],
            |g, v| {
                let r = g.relu(v[0]);
                g.mul(r, r)
            },
            1e-3,
            1e-2,
        )
        .unwrap();
    }
}
