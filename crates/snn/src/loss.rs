//! Softmax cross-entropy on time-accumulated readout logits.
//!
//! The readout integrator accumulates logit contributions over the `T`
//! timesteps; the loss is computed **once per iteration** on the
//! accumulated logits and its gradient `∂L/∂logits` is returned in closed
//! form. Because `logits = Σ_t logits_t`, the same gradient seeds every
//! timestep's contribution — which is precisely what lets checkpointed
//! segments be backpropagated independently (paper Fig. 5/6).

use skipper_memprof::{record_op, OpKind};
use skipper_tensor::Tensor;

/// Loss value, gradient and batch accuracy.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean cross-entropy over the batch.
    pub loss: f64,
    /// `∂L/∂logits`, shape `[B, K]`, already divided by the batch size.
    pub dlogits: Tensor,
    /// Correctly classified samples in the batch.
    pub correct: usize,
}

/// Softmax cross-entropy of one batch shard, with the gradient scaled for
/// a possibly larger global batch.
#[derive(Debug, Clone)]
pub struct ShardLossOutput {
    /// Per-sample negative log-likelihoods, in row order.
    pub per_sample: Vec<f64>,
    /// `∂L/∂logits`, shape `[rows, K]`, divided by the *global* batch size.
    pub dlogits: Tensor,
    /// Correctly classified samples among these rows.
    pub correct: usize,
}

/// Mean softmax cross-entropy of `logits [B,K]` against integer `labels`.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size or any label is out
/// of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> LossOutput {
    let b = labels.len();
    let shard = softmax_cross_entropy_scaled(logits, labels, b);
    // Folding the per-sample values in row order reproduces the historical
    // `loss -= log_p` accumulation bit-for-bit.
    let loss: f64 = shard.per_sample.iter().sum();
    LossOutput {
        loss: loss / b as f64,
        dlogits: shard.dlogits,
        correct: shard.correct,
    }
}

/// Softmax cross-entropy of a batch *shard*: per-sample losses plus a
/// gradient already divided by `global_batch` (the denominator the
/// unsharded mean-loss gradient would use).
///
/// With `global_batch == labels.len()` this is exactly the unsharded
/// [`softmax_cross_entropy`] computation.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the row count, any label is out of
/// range, or `global_batch` is zero.
pub fn softmax_cross_entropy_scaled(
    logits: &Tensor,
    labels: &[usize],
    global_batch: usize,
) -> ShardLossOutput {
    let (b, k) = logits.shape().as_2d();
    assert_eq!(labels.len(), b, "one label per row");
    assert!(global_batch > 0, "global batch must be positive");
    let _span = skipper_obs::span!("loss", batch = b, classes = k);
    record_op(
        OpKind::Reduce,
        (3 * b * k) as f64,
        2.0 * logits.byte_size() as f64,
    );
    let mut dlogits = Tensor::zeros([b, k]);
    let mut per_sample = Vec::with_capacity(b);
    let mut correct = 0usize;
    {
        let dl = dlogits.data_mut();
        for (r, &label) in labels.iter().enumerate() {
            assert!(label < k, "label {label} out of range for {k} classes");
            let row = &logits.data()[r * k..(r + 1) * k];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f64> = row.iter().map(|&x| ((x - max) as f64).exp()).collect();
            let denom: f64 = exps.iter().sum();
            let log_p = (exps[label] / denom).ln();
            per_sample.push(-log_p);
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            if argmax == label {
                correct += 1;
            }
            for (c, &e) in exps.iter().enumerate() {
                let softmax = (e / denom) as f32;
                let one_hot = if c == label { 1.0 } else { 0.0 };
                dl[r * k + c] = (softmax - one_hot) / global_batch as f32;
            }
        }
    }
    ShardLossOutput {
        per_sample,
        dlogits,
        correct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper_tensor::XorShiftRng;

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Tensor::zeros([2, 4]);
        let out = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((out.loss - (4.0f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let logits = Tensor::from_vec(vec![10.0, 0.0, 0.0], [1, 3]);
        let out = softmax_cross_entropy(&logits, &[0]);
        assert!(out.loss < 1e-3);
        assert_eq!(out.correct, 1);
    }

    #[test]
    fn gradient_rows_sum_to_zero_and_point_away_from_label() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 0.5, -1.0, 0.0, 1.0], [2, 3]);
        let out = softmax_cross_entropy(&logits, &[1, 2]);
        let d = out.dlogits.data();
        for r in 0..2 {
            let row = &d[r * 3..(r + 1) * 3];
            let sum: f32 = row.iter().sum();
            assert!(sum.abs() < 1e-6, "softmax-grad rows sum to 0");
        }
        assert!(d[1] < 0.0, "label logit gradient is negative");
        assert!(d[0] > 0.0 && d[2] > 0.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = XorShiftRng::new(60);
        let logits = Tensor::randn([3, 5], &mut rng);
        let labels = [4usize, 0, 2];
        let out = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for probe in [0usize, 4, 7, 12, 14] {
            let mut plus = logits.deep_clone();
            plus.data_mut()[probe] += eps;
            let mut minus = logits.deep_clone();
            minus.data_mut()[probe] -= eps;
            let lp = softmax_cross_entropy(&plus, &labels).loss;
            let lm = softmax_cross_entropy(&minus, &labels).loss;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let ana = out.dlogits.data()[probe];
            assert!((num - ana).abs() < 1e-3, "{num} vs {ana}");
        }
    }

    #[test]
    fn sharded_rows_reproduce_unsharded_loss_and_grad() {
        let mut rng = XorShiftRng::new(61);
        let logits = Tensor::randn([5, 3], &mut rng);
        let labels = [0usize, 2, 1, 1, 0];
        let full = softmax_cross_entropy(&logits, &labels);

        // Split into rows [0..2) and [2..5); fold shard per-sample losses
        // in global row order and compare bitwise.
        let top = Tensor::from_vec(logits.data()[..2 * 3].to_vec(), [2, 3]);
        let bot = Tensor::from_vec(logits.data()[2 * 3..].to_vec(), [3, 3]);
        let a = softmax_cross_entropy_scaled(&top, &labels[..2], 5);
        let b = softmax_cross_entropy_scaled(&bot, &labels[2..], 5);
        let loss: f64 = a.per_sample.iter().chain(&b.per_sample).sum::<f64>() / 5.0;
        assert_eq!(loss.to_bits(), full.loss.to_bits());
        assert_eq!(a.correct + b.correct, full.correct);
        let mut grad = a.dlogits.data().to_vec();
        grad.extend_from_slice(b.dlogits.data());
        assert_eq!(grad, full.dlogits.data());
    }

    #[test]
    fn numerically_stable_for_huge_logits() {
        let logits = Tensor::from_vec(vec![1000.0, 999.0], [1, 2]);
        let out = softmax_cross_entropy(&logits, &[0]);
        assert!(out.loss.is_finite());
        assert!(out.dlogits.data().iter().all(|x| x.is_finite()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_labels() {
        softmax_cross_entropy(&Tensor::zeros([1, 2]), &[5]);
    }
}
