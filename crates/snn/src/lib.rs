//! The spiking-neural-network substrate of the Skipper reproduction.
//!
//! The Skipper paper (MICRO 2022) trains deep convolutional SNNs — VGG5,
//! VGG11, ResNet20, LeNet, a custom network and (for the TBPTT-LBP
//! comparison) AlexNet — with BPTT and surrogate gradients. This crate
//! provides everything those experiments need *below* the training
//! algorithms:
//!
//! * [`lif`] — the discrete-time leaky-integrate-and-fire neuron of the
//!   paper's Eq. 1, with both a plain ("no-grad") step and a taped step for
//!   [`skipper_autograd::Graph`];
//! * [`params`] — the parameter store ([`ParamStore`]) and the per-graph
//!   parameter binder ([`ParamBinder`]) that let one set of weights be
//!   re-inserted into many short-lived tapes (the mechanism behind
//!   checkpoint segment re-execution);
//! * [`layers`] — convolutional and dense synapse layers with Kaiming
//!   initialisation;
//! * [`network`] — the [`SpikingNetwork`] container: modules, state
//!   handling, the per-timestep forward in both plain and taped form, and
//!   shape/cost introspection for the analytic memory model;
//! * [`models`] — constructors for the paper's topologies;
//! * [`encode`] — Poisson rate encoding of frame data (the paper's
//!   CIFAR-10/100 pipeline) plus raw-frame repetition;
//! * [`loss`] — softmax cross-entropy on time-accumulated readout logits,
//!   returning the analytic `∂L/∂logits` used to seed tapes;
//! * [`optim`] — SGD(+momentum) and Adam (the paper trains with Adam).

pub mod ann;
pub mod calibrate;
pub mod encode;
pub mod error;
pub mod layers;
pub mod lif;
pub mod loss;
pub mod metrics;
pub mod models;
pub mod network;
pub mod optim;
pub mod params;
pub mod schedule;
pub mod serialize;

pub use ann::{ann_eval_batch, ann_logits_taped, ann_train_batch};
pub use calibrate::{calibrate_thresholds, set_threshold};
pub use encode::{Encoder, LatencyEncoder, PoissonEncoder, RepeatEncoder};
pub use error::SnnError;
pub use layers::{Conv2dLayer, LinearLayer};
pub use lif::{lif_step_infer, lif_step_taped, LifConfig};
pub use loss::{softmax_cross_entropy, softmax_cross_entropy_scaled, LossOutput, ShardLossOutput};
pub use metrics::{top_k_accuracy, ConfusionMatrix};
pub use models::{alexnet, custom_net, lenet5, resnet20, resnet34, vgg11, vgg5, ModelConfig};
pub use network::{
    LifUnit, Module, NetworkState, SpikingNetwork, StepCtx, StepOutput, TapedState, TapedStepOutput,
};
pub use optim::{Adam, Optimizer, OptimizerState, Sgd};
pub use params::{ParamBinder, ParamId, ParamStore, Parameter, ShardGrads};
pub use schedule::{apply_schedule, clip_grad_norm, Constant, CosineDecay, LrSchedule, StepDecay};
pub use serialize::{crc32, load_params, save_params, Crc32, ParamRecord};
