//! The discrete-time leaky-integrate-and-fire neuron (paper Eq. 1).
//!
//! ```text
//! U_t^l = λ·U_{t-1}^l + I_t^l − θ·o_{t-1}^l        (membrane update)
//! o_t^l = H(U_t^l − θ)                             (firing)
//! ```
//!
//! where `I_t^l = W^l · o_t^{l-1}` is the synaptic current computed by a
//! [`Conv2dLayer`](crate::layers::Conv2dLayer) or
//! [`LinearLayer`](crate::layers::LinearLayer). Two properties follow the
//! paper exactly:
//!
//! * the **reset term is detached**: `−θ·o_{t-1}` uses the previous spikes
//!   as a constant, so no gradient flows through it ("the reset term is not
//!   taken into account for the gradient computation", Section III-B);
//! * consequently the *only* gradient path across timesteps is the leaky
//!   membrane `λ·U_{t-1}`, which is why checkpoint boundaries only need to
//!   exchange `∂L/∂U`.

use skipper_autograd::{Graph, Surrogate, Var};
use skipper_tensor::Tensor;

/// Parameters of a LIF neuron population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifConfig {
    /// Membrane leak `λ` (< 1).
    pub leak: f32,
    /// Firing threshold `θ`.
    pub threshold: f32,
    /// Surrogate derivative used on the backward pass.
    pub surrogate: Surrogate,
}

impl Default for LifConfig {
    fn default() -> Self {
        LifConfig {
            leak: 0.9,
            threshold: 1.0,
            surrogate: Surrogate::default_triangle(),
        }
    }
}

impl LifConfig {
    /// Config with a given leak, default threshold/surrogate.
    pub fn with_leak(leak: f32) -> LifConfig {
        LifConfig {
            leak,
            ..LifConfig::default()
        }
    }
}

/// One plain (gradient-free) LIF step.
///
/// Returns `(U_t, o_t)` given the synaptic current `I_t`, previous membrane
/// `U_{t-1}` and previous spikes `o_{t-1}` (all of the same shape).
pub fn lif_step_infer(
    cfg: &LifConfig,
    current: &Tensor,
    mem: &Tensor,
    prev_spike: &Tensor,
) -> (Tensor, Tensor) {
    let u = current
        .add_scaled(mem, cfg.leak)
        .add_scaled(prev_spike, -cfg.threshold);
    let threshold = cfg.threshold;
    let o = u.map(move |x| if x >= threshold { 1.0 } else { 0.0 });
    (u, o)
}

/// One taped LIF step on graph `g`.
///
/// `current` and `mem` are graph variables; `prev_spike` is the previous
/// spike **value** (detached, per the paper). Returns `(U_t, o_t)` as
/// variables. Three nodes are appended: the leak-accumulate, the reset,
/// and the spike.
pub fn lif_step_taped(
    g: &mut Graph,
    cfg: &LifConfig,
    current: Var,
    mem: Var,
    prev_spike: &Tensor,
) -> (Var, Var) {
    let pre = g.add_scaled(current, mem, cfg.leak);
    let u = g.add_scaled_const(pre, prev_spike, -cfg.threshold);
    let o = g.spike(u, cfg.threshold, cfg.surrogate);
    (u, o)
}

/// Graph nodes appended by [`lif_step_taped`] (used by the cost model).
pub const TAPED_NODES_PER_LIF: u64 = 3;

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), v.len())
    }

    #[test]
    fn integrates_leaks_and_fires() {
        let cfg = LifConfig {
            leak: 0.5,
            threshold: 1.0,
            surrogate: Surrogate::default_triangle(),
        };
        let zero = t(&[0.0]);
        // Step 1: I=0.8 → U=0.8, no spike.
        let (u1, o1) = lif_step_infer(&cfg, &t(&[0.8]), &zero, &zero);
        assert_eq!(u1.data(), &[0.8]);
        assert_eq!(o1.data(), &[0.0]);
        // Step 2: U = 0.5·0.8 + 0.8 = 1.2 ≥ θ → spike.
        let (u2, o2) = lif_step_infer(&cfg, &t(&[0.8]), &u1, &o1);
        assert!((u2.data()[0] - 1.2).abs() < 1e-6);
        assert_eq!(o2.data(), &[1.0]);
        // Step 3: reset subtracts θ: U = 0.5·1.2 + 0.8 − 1.0 = 0.4.
        let (u3, o3) = lif_step_infer(&cfg, &t(&[0.8]), &u2, &o2);
        assert!((u3.data()[0] - 0.4).abs() < 1e-6);
        assert_eq!(o3.data(), &[0.0]);
    }

    #[test]
    fn silent_neuron_decays_to_zero() {
        let cfg = LifConfig::with_leak(0.5);
        let mut mem = t(&[0.8]);
        let mut spike = t(&[0.0]);
        for _ in 0..20 {
            let (u, o) = lif_step_infer(&cfg, &t(&[0.0]), &mem, &spike);
            mem = u;
            spike = o;
        }
        assert!(mem.data()[0].abs() < 1e-5);
    }

    #[test]
    fn taped_matches_infer() {
        let cfg = LifConfig::default();
        let current = t(&[0.3, 1.5, 0.9]);
        let mem = t(&[0.5, 0.2, 0.8]);
        let prev = t(&[0.0, 1.0, 0.0]);
        let (ui, oi) = lif_step_infer(&cfg, &current, &mem, &prev);
        let mut g = Graph::new();
        let cv = g.leaf(current.clone(), false);
        let mv = g.leaf(mem.clone(), true);
        let (ut, ot) = lif_step_taped(&mut g, &cfg, cv, mv, &prev);
        assert!(g.value(ut).allclose(&ui, 1e-6));
        assert!(g.value(ot).allclose(&oi, 1e-6));
    }

    #[test]
    fn gradient_flows_through_membrane_not_reset() {
        let cfg = LifConfig {
            leak: 0.7,
            threshold: 1.0,
            surrogate: Surrogate::default_triangle(),
        };
        let mut g = Graph::new();
        let current = g.leaf(t(&[0.5]), true);
        let mem = g.leaf(t(&[0.6]), true);
        let prev = t(&[1.0]); // previous spike, reset active
        let (u, _o) = lif_step_taped(&mut g, &cfg, current, mem, &prev);
        g.seed_grad(u, t(&[1.0]));
        g.backward();
        // dU/dI = 1, dU/dU_prev = λ; reset contributes nothing.
        assert_eq!(g.grad(current).unwrap().data(), &[1.0]);
        assert!((g.grad(mem).unwrap().data()[0] - 0.7).abs() < 1e-6);
    }

    #[test]
    fn taped_node_count_constant_is_accurate() {
        let mut g = Graph::new();
        let c = g.leaf(t(&[0.0]), false);
        let m = g.leaf(t(&[0.0]), false);
        let before = g.len();
        lif_step_taped(&mut g, &LifConfig::default(), c, m, &t(&[0.0]));
        assert_eq!(g.len() - before, TAPED_NODES_PER_LIF as usize);
    }
}
