//! Contract tests for `SpikingNetwork`: construction validation, cost
//! introspection consistency, and module-range execution.

use skipper_snn::{
    custom_net, vgg5, LinearLayer, ModelConfig, Module, ParamStore, SpikingNetwork, StepCtx,
};
use skipper_tensor::{Tensor, XorShiftRng};

fn cfg() -> ModelConfig {
    ModelConfig {
        input_hw: 8,
        width_mult: 0.25,
        ..ModelConfig::default()
    }
}

#[test]
#[should_panic(expected = "last module must be the readout")]
fn from_parts_requires_output_module() {
    let store = ParamStore::new();
    SpikingNetwork::from_parts(
        "bad",
        vec![Module::Flatten],
        store,
        vec![],
        vec![3, 8, 8],
        10,
    );
}

#[test]
#[should_panic(expected = "state shape per LIF unit")]
fn from_parts_requires_state_shapes() {
    let mut store = ParamStore::new();
    let mut rng = XorShiftRng::new(1);
    let readout = LinearLayer::new(&mut store, "ro", 4, 2, true, &mut rng);
    let lin = LinearLayer::new(&mut store, "fc", 4, 4, true, &mut rng);
    let modules = vec![
        Module::LinearLif {
            lin,
            lif: skipper_snn::LifUnit {
                cfg: Default::default(),
                state_id: 0,
            },
            dropout: None,
        },
        Module::Output(readout),
    ];
    // One LIF unit but zero state shapes → panic.
    SpikingNetwork::from_parts("bad", modules, store, vec![], vec![4], 2);
}

#[test]
fn per_step_flops_tracks_the_op_log() {
    use skipper_memprof::{take_op_log, OpKind};
    let net = custom_net(&cfg());
    let input = Tensor::ones([1, 3, 8, 8]);
    let mut state = net.init_state(1);
    take_op_log();
    let _ = net.step_infer(&input, &mut state, &StepCtx::eval(0));
    let log = take_op_log();
    let measured: f64 = log
        .iter()
        .filter(|r| matches!(r.kind, OpKind::MatMul))
        .map(|r| r.flops)
        .sum();
    let analytic = net.per_step_flops_per_sample();
    // The analytic count covers conv/linear matmuls plus LIF elementwise;
    // the measured matmul share must be within it and dominate it.
    assert!(
        measured <= analytic * 1.05,
        "measured matmul {measured} vs analytic {analytic}"
    );
    assert!(
        measured >= analytic * 0.5,
        "matmuls should dominate: {measured} vs {analytic}"
    );
}

#[test]
fn range_execution_composes_to_full_network() {
    let net = vgg5(&cfg());
    let mut rng = XorShiftRng::new(9);
    let input = Tensor::rand([2, 3, 8, 8], &mut rng).map(|x| (x > 0.5) as i32 as f32);
    let ctx = StepCtx::eval(0);

    let mut full_state = net.init_state(2);
    let full = net.step_infer(&input, &mut full_state, &ctx);

    let n = net.modules().len();
    let split = n / 2;
    let mut part_state = net.init_state(2);
    let (mid, none, _) = net.step_infer_modules(input.clone(), &mut part_state, &ctx, 0..split);
    assert!(none.is_none(), "readout is in the second half");
    let (_, logits, _) = net.step_infer_modules(mid, &mut part_state, &ctx, split..n);
    assert!(
        logits.unwrap().allclose(&full.logits, 1e-5),
        "split execution must equal full execution"
    );
    for (a, b) in part_state.mems.iter().zip(&full_state.mems) {
        assert!(a.allclose(b, 1e-6));
    }
}

#[test]
fn state_elems_matches_init_state() {
    let net = vgg5(&cfg());
    let state = net.init_state(3);
    let total: usize = state
        .mems
        .iter()
        .chain(state.spikes.iter())
        .map(|t| t.numel())
        .sum();
    assert_eq!(total as u64, net.state_elems_per_sample() * 3);
}

#[test]
fn network_names_and_metadata_are_consistent() {
    let net = custom_net(&cfg());
    assert_eq!(net.name(), "custom-net");
    assert_eq!(net.input_shape(), &[3, 8, 8]);
    assert_eq!(net.num_classes(), 10);
    assert_eq!(net.state_shapes().len(), net.spiking_layer_count());
    assert!(net.per_step_graph_elems_per_sample() > 0);
}
