//! In-process tests of the lexer and rule engine: tricky token streams,
//! exact diagnostic positions, waiver semantics and manifest parsing.

use skipper_lint::lexer::{lex, test_regions, TokKind};
use skipper_lint::{check_file, Manifest};

/// A manifest with just enough declared names for the rule tests.
fn manifest() -> Manifest {
    Manifest::parse(
        r#"
[counters]
"skipper.steps_skipped" = "steps dropped"
[gauges]
"engine.queue_depth{worker}" = "per-worker backlog"
[spans]
"iteration" = "one train_batch"
[events]
"skip_decision" = "per-step decision"
[env]
"SKIPPER_WORKERS" = "pool size"
"#,
    )
    .expect("test manifest parses")
}

/// `check_file` against a path inside the numeric core with every rule
/// armed, returning non-waived `(line, rule)` pairs.
fn findings(src: &str) -> Vec<(u32, &'static str)> {
    let diags = check_file("crates/core/src/engine.rs", src, &manifest());
    diags
        .iter()
        .filter(|d| d.waived.is_none())
        .map(|d| (d.line, d.rule))
        .collect()
}

// --- lexer ---------------------------------------------------------------

#[test]
fn raw_strings_swallow_quotes_and_hashes() {
    let toks = lex(r####"let x = r##"quoted "#end"# text"## ;"####);
    let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
    assert_eq!(strs.len(), 1);
    assert!(strs[0].text.contains(r##""#end"#"##));
}

#[test]
fn nested_block_comments_stay_comments() {
    let src = "a /* outer /* inner */ still outer */ b";
    let toks = lex(src);
    let idents: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(idents, ["a", "b"]);
    assert_eq!(toks.iter().filter(|t| t.is_comment()).count(), 1);
}

#[test]
fn lifetimes_are_not_char_literals() {
    let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
    assert_eq!(
        toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
        2
    );
    assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
}

#[test]
fn escaped_quote_chars_do_not_desync() {
    let toks = lex(r"let q = '\''; let s = 'x'; after");
    assert!(toks.iter().any(|t| t.is_ident("after")));
    assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
}

#[test]
fn raw_identifiers_keep_their_prefix() {
    let toks = lex("let r#unsafe = 1; r#type");
    assert!(toks.iter().any(|t| t.is_ident("r#unsafe")));
    assert!(toks.iter().any(|t| t.is_ident("r#type")));
    assert!(!toks.iter().any(|t| t.is_ident("unsafe")));
}

#[test]
fn positions_are_one_based_lines_and_columns() {
    let toks = lex("ab\n  cd");
    let cd = toks.iter().find(|t| t.is_ident("cd")).unwrap();
    assert_eq!((cd.line, cd.col), (2, 3));
}

#[test]
fn cfg_test_module_region_covers_its_body() {
    let src = "fn a() {}\n#[cfg(test)]\nmod tests { fn b() { x.unwrap(); } }\nfn c() {}";
    let toks = lex(src);
    let regions = test_regions(&toks);
    assert_eq!(regions.len(), 1);
    let unwrap_idx = toks.iter().position(|t| t.is_ident("unwrap")).unwrap();
    let c_idx = toks.iter().position(|t| t.is_ident("c")).unwrap();
    let (s, e) = regions[0];
    assert!(unwrap_idx >= s && unwrap_idx <= e, "unwrap is inside");
    assert!(c_idx > e, "fn c is outside");
}

// --- rules: exact positions ----------------------------------------------

#[test]
fn p1_reports_exact_line_and_rule() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    assert_eq!(findings(src), [(2, "P1")]);
}

#[test]
fn string_embedded_unwrap_does_not_fire() {
    let src = "pub fn f() -> &'static str {\n    \"please .unwrap() me\"\n}\n";
    assert_eq!(findings(src), []);
    let raw = "pub fn f() -> String {\n    r#\"x.unwrap(); panic!(\"no\")\"#.into()\n}\n";
    assert_eq!(findings(raw), []);
}

#[test]
fn commented_out_violations_do_not_fire() {
    let src = "// x.unwrap()\n/* Instant::now() */\npub fn f() {}\n";
    assert_eq!(findings(src), []);
}

#[test]
fn cfg_test_code_is_exempt_except_s1() {
    let src = "#[cfg(test)]\nmod tests {\n    fn f(x: Option<u32>) -> u32 {\n        let p = &1u32 as *const u32;\n        let _ = unsafe { *p };\n        x.unwrap()\n    }\n}\n";
    assert_eq!(findings(src), [(5, "S1")]);
}

#[test]
fn d1_fires_on_clock_reads_but_not_type_mentions() {
    let src = "fn f(deadline: std::time::Instant) -> std::time::Instant {\n    let _ = std::time::Instant::now();\n    deadline\n}\n";
    assert_eq!(findings(src), [(2, "D1")]);
}

#[test]
fn d2_fires_on_float_sums_only() {
    let src = "fn f(v: &[f32], n: &[usize]) -> f32 {\n    let a = v.iter().copied().sum::<f32>();\n    let b = n.iter().copied().sum::<usize>();\n    a + b as f32\n}\n";
    assert_eq!(findings(src), [(2, "D2")]);
}

#[test]
fn o1_checks_names_against_the_manifest() {
    let src = "fn f(m: &M) {\n    m.counter_add(\"skipper.steps_skipped\", 1);\n    m.counter_add(\"skipper.steps_skiped\", 1);\n}\n";
    assert_eq!(findings(src), [(3, "O1")]);
}

#[test]
fn o2_checks_whole_literal_knobs_only() {
    let src = "fn f() {\n    let _ = std::env::var(\"SKIPPER_WORKERS\");\n    let _ = std::env::var(\"SKIPPER_BOGUS\");\n    let _ = \"mentions SKIPPER_BOGUS inside prose\";\n}\n";
    assert_eq!(findings(src), [(3, "O2")]);
}

// --- waivers --------------------------------------------------------------

#[test]
fn waiver_with_reason_downgrades_the_finding() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    // lint:allow(panic): index checked two lines up\n    x.unwrap()\n}\n";
    let diags = check_file("crates/core/src/engine.rs", src, &manifest());
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].waived.as_deref(),
        Some("index checked two lines up")
    );
}

#[test]
fn waiver_without_reason_does_not_count() {
    // The finding stays active, and W1 flags the dead waiver itself.
    let src = "fn f(x: Option<u32>) -> u32 {\n    // lint:allow(panic)\n    x.unwrap()\n}\n";
    assert_eq!(findings(src), [(2, "W1"), (3, "P1")]);
}

#[test]
fn waiver_for_the_wrong_rule_does_not_count() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    // lint:allow(determinism): wrong category\n    x.unwrap()\n}\n";
    assert_eq!(findings(src), [(2, "W1"), (3, "P1")]);
}

#[test]
fn waiver_two_lines_away_does_not_count() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    // lint:allow(panic): too far away\n\n    x.unwrap()\n}\n";
    assert_eq!(findings(src), [(2, "W1"), (4, "P1")]);
}

// --- scope ----------------------------------------------------------------

#[test]
fn scope_is_path_dependent() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let m = manifest();
    // Library crate: P1 applies.
    assert_eq!(check_file("crates/obs/src/lib.rs", src, &m).len(), 1);
    // Binary targets and the root harness: panics are allowed.
    assert_eq!(check_file("crates/obs/src/bin/demo.rs", src, &m).len(), 0);
    assert_eq!(check_file("src/main.rs", src, &m).len(), 0);
    // D1 applies in the numeric core, not in the obs crate.
    let clock = "fn t() { let _ = std::time::Instant::now(); }\n";
    assert_eq!(check_file("crates/core/src/engine.rs", clock, &m).len(), 1);
    assert_eq!(check_file("crates/obs/src/metrics.rs", clock, &m).len(), 0);
}

#[test]
fn production_files_cannot_scope_themselves_down() {
    let src = "// lint-fixture: scope=s1\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    // The header is honored only under a fixtures/ path.
    assert_eq!(
        check_file("crates/core/src/engine.rs", src, &manifest()).len(),
        1
    );
    assert_eq!(
        check_file("crates/lint/tests/fixtures/x.rs", src, &manifest()).len(),
        0
    );
}

// --- manifest -------------------------------------------------------------

#[test]
fn manifest_parses_sections_and_labeled_families() {
    let m = manifest();
    assert!(m.declares("counters", "skipper.steps_skipped"));
    assert!(m.declares("gauges", "engine.queue_depth{worker}"));
    assert!(m.declares_metric("engine.queue_depth{worker}"));
    assert!(!m.declares("counters", "nope"));
    assert!(m.declares("env", "SKIPPER_WORKERS"));
}

#[test]
fn manifest_rejects_malformed_lines() {
    assert!(Manifest::parse("[counters]\nno equals sign here\n").is_err());
}

#[test]
fn manifest_ignores_comments_and_blank_lines() {
    let m = Manifest::parse("# header\n\n[env]\n# inline section comment\n\"SKIPPER_X\" = \"y\"\n")
        .expect("parses");
    assert!(m.declares("env", "SKIPPER_X"));
}
