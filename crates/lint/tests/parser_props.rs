//! Robustness properties of the block parser and the concurrency engine:
//! arbitrary token soup must never panic, and whatever function bodies
//! are recognized must be well-formed spans over the token stream. The
//! engine's precision is covered by the seeded fixtures; this file only
//! guarantees it cannot be crashed by weird-but-lexable input.

use proptest::prelude::*;
use skipper_lint::lexer::lex;
use skipper_lint::parser::parse_fns;
use skipper_lint::rules::analyze_concurrency;

/// Vocabulary skewed toward the parser's decision points: item keywords,
/// every delimiter, arrows, generics/shift ambiguity, and the names the
/// concurrency engine treats specially.
const VOCAB: &[&str] = &[
    "fn",
    "impl",
    "struct",
    "trait",
    "mod",
    "where",
    "for",
    "let",
    "match",
    "if",
    "else",
    "move",
    "pub",
    "unsafe_marker",
    "f",
    "g",
    "lock",
    "recv",
    "send",
    "sleep",
    "drop",
    "spawn",
    "named_lock",
    "lock_unpoisoned",
    "self",
    "Self",
    "x",
    "T",
    "'a",
    "<",
    ">",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    "->",
    "=>",
    ";",
    ",",
    "::",
    ":",
    "#",
    "!",
    "&",
    "|",
    ".",
    "=",
    "==",
    "<<",
    ">>",
    "-",
    "\"obs.thing\"",
    "'{'",
    "0.5",
    "12",
    "// comment\n",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parser_and_engine_never_panic_on_token_soup(
        ids in prop::collection::vec(0usize..VOCAB.len(), 0..120),
    ) {
        let words: Vec<&str> = ids.iter().map(|&i| VOCAB[i]).collect();
        let src = words.join(" ");

        let toks = lex(&src);
        let fns = parse_fns(&toks);
        for f in &fns {
            prop_assert!(!f.name.is_empty(), "parsed fn with empty name");
            if let Some((open, close)) = f.body {
                prop_assert!(open < close, "body span inverted: {open}..{close}");
                prop_assert!(close < toks.len(), "body span escapes the token stream");
            }
        }

        // The full interprocedural pipeline must also survive the soup.
        let _ = analyze_concurrency(&[("crates/lint/src/soup.rs".to_string(), src)]);
    }
}

/// The tricky fixture is the deterministic anchor for the same property:
/// its shapes are real Rust, and none of them may confuse the parser
/// into dropping or inventing a function.
#[test]
fn tricky_fixture_parses_to_its_real_functions() {
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/parser_tricky.rs"
    ))
    .expect("fixture readable");
    let toks = lex(&src);
    let fns = parse_fns(&toks);
    let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
    for expected in [
        "nested_generics",
        "shifty",
        "higher",
        "double",
        "triple",
        "dispatch",
        "literals",
        "windows",
        "first_or_default",
        "describe",
        "leaf",
        "turbo",
    ] {
        assert!(
            names.contains(&expected),
            "parser lost fn {expected}: {names:?}"
        );
    }
    for f in &fns {
        assert!(f.body.is_some(), "fn {} has no body span", f.name);
    }
    // Methods carry their impl context.
    let method = fns
        .iter()
        .find(|f| f.name == "first_or_default")
        .expect("method parsed");
    assert!(method.has_self, "method lost its self receiver");
    assert_eq!(method.self_ty.as_deref(), Some("Wrapper"));
}
