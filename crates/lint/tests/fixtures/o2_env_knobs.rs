// lint-fixture: scope=o2
//! O2 fixture: whole-string `SKIPPER_*` literals must be declared in the
//! `[env]` section of `crates/lint/metrics.toml`.

pub fn declared() -> Option<String> {
    std::env::var("SKIPPER_WORKERS").ok()
}

pub const DECLARED_VIA_CONST: &str = "SKIPPER_OBS_ADDR";

pub fn undeclared() -> Option<String> {
    let a = std::env::var("SKIPPER_TYPO_KNOB").ok(); //~ ERROR O2
    let b = std::env::var("SKIPPER_OBS_ADR").ok(); //~ ERROR O2
    a.or(b)
}

pub const UNDECLARED_VIA_CONST: &str = "SKIPPER_HIDDEN_KNOB"; //~ ERROR O2

pub fn non_knob_strings_ok() -> &'static str {
    // Only a whole-literal SKIPPER_[A-Z0-9_]+ match counts as a knob:
    "set SKIPPER_WORKERS in your environment before launching"
}

pub fn waived() -> Option<String> {
    // lint:allow(env): fixture — knob injected by an external harness
    std::env::var("SKIPPER_EXTERNAL_KNOB").ok()
}
