// lint-fixture: scope=c1
//! Seeded lock-order inversions for rule C1: a forward/backward pair, a
//! self-re-entry, and an inversion hidden behind a call (the edge is
//! found through the callee's acquisition summary).

use std::sync::Mutex;

struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
    e: Mutex<u32>,
}

impl Pair {
    fn forward(&self) -> u32 {
        let a = self.a.lock().unwrap();
        let b = self.b.lock().unwrap(); //~ ERROR C1
        *a + *b
    }

    fn backward(&self) -> u32 {
        let b = self.b.lock().unwrap();
        let a = self.a.lock().unwrap(); //~ ERROR C1
        *a + *b
    }

    fn relock(&self) -> u32 {
        let first = self.e.lock().unwrap();
        let second = self.e.lock().unwrap(); //~ ERROR C1
        *first + *second
    }
}

struct Chained {
    c: Mutex<u32>,
    d: Mutex<u32>,
}

impl Chained {
    fn lock_head(&self) -> u32 {
        let c = self.c.lock().unwrap();
        *c + self.lock_tail() //~ ERROR C1
    }

    fn lock_tail(&self) -> u32 {
        let d = self.d.lock().unwrap();
        *d
    }

    fn opposite(&self) -> u32 {
        let d = self.d.lock().unwrap();
        let c = self.c.lock().unwrap(); //~ ERROR C1
        *c + *d
    }
}
