// lint-fixture: scope=all
//! Lexer stress fixture: every rule is armed (`scope=all`) and every
//! construct below is a NON-violation. The self-test fails if even one
//! diagnostic fires in this file.

pub fn strings_are_data() -> String {
    let cooked = "x.unwrap() HashMap Instant::now() panic!(\"no\")";
    let raw = r#"y.expect("k"); .sum::<f32>() unsafe"#;
    let raw_nested_hashes = r##"quoted "#end"# .fold(0.0, f) SystemTime"##;
    let bytes = b"panic! in a byte string";
    let byte_raw = br#".unwrap() once more"#;
    let escaped = "quote \" then .expect(\"x\") still one literal";
    format!("{cooked}{raw}{raw_nested_hashes}{bytes:?}{byte_raw:?}{escaped}")
}

pub fn comments_are_data() -> u32 {
    // line comment: .unwrap() HashMap .sum::<f32>() unsafe thread_rng()
    /* block: Instant::now()
       /* nested block: .expect("x") panic!("y") */
       still inside the outer block: todo!() */
    7
}

pub fn chars_and_lifetimes<'a>(v: &'a [u32]) -> (&'a [u32], char) {
    // `'a` must lex as a lifetime, `'\''` and `'x'` as char literals —
    // a confused lexer would swallow the rest of the file as a string.
    let quote = '\'';
    let x = 'x';
    let newline = '\n';
    (v, if x == quote { newline } else { quote })
}

pub fn shifts_and_generics(v: Vec<Vec<u32>>) -> usize {
    // `>>` after nested generics, `<<` as a shift: pure punctuation.
    let shifted = 1usize << 4 >> 2;
    v.len() + shifted
}

pub fn unterminated_constructs_do_not_eat_the_file() -> &'static str {
    "the lexer survives everything above this line"
}
