// lint-fixture: scope=d1
//! D1 fixture: nondeterministic containers, wall-clock reads and unseeded
//! RNG inside the (simulated) numeric core.

pub fn container_hits(keys: &[String]) -> usize {
    let mut m = std::collections::HashMap::new(); //~ ERROR D1
    for k in keys {
        m.insert(k.clone(), 1u32);
    }
    let s = std::collections::HashSet::<u32>::new(); //~ ERROR D1
    m.len() + s.len()
}

pub fn container_ok(keys: &[String]) -> usize {
    let mut m = std::collections::BTreeMap::new();
    for k in keys {
        m.insert(k.clone(), 1u32);
    }
    m.len()
}

pub fn clock_hits() -> u64 {
    let t0 = std::time::Instant::now(); //~ ERROR D1
    let _ = std::time::SystemTime::UNIX_EPOCH; //~ ERROR D1
    t0.elapsed().as_micros() as u64
}

pub fn clock_type_mention_ok(deadline: std::time::Instant) -> std::time::Instant {
    // A bare `Instant` type mention is fine; only `Instant::now()` reads
    // the wall clock.
    deadline
}

pub fn rng_hits() -> u64 {
    let mut rng = thread_rng(); //~ ERROR D1
    let _ = OsRng; //~ ERROR D1
    rng.next_u64()
}

pub fn waived_telemetry_clock() -> std::time::Instant {
    // lint:allow(determinism): fixture — telemetry-only wall-clock read
    std::time::Instant::now()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_use_hash_containers() {
        let mut m = std::collections::HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m.len(), 1);
    }
}
