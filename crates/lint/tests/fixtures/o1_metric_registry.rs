// lint-fixture: scope=o1
//! O1 fixture: metric/span/event name literals checked against
//! `crates/lint/metrics.toml`. Declared names pass, typos fire.

pub fn declared_names(m: &Metrics) {
    m.counter_add("skipper.steps_skipped", 1);
    m.gauge_set("skipper.sst_threshold", 0.5);
    m.observe("iteration.wall_us", 10.0);
    m.observe_with_exemplar("serve.request_wall_us", 10.0, 7);
    m.labeled("engine.queue_depth", "worker").gauge_set(3.0);
    span!("iteration");
    instant!(Level::Info, "skip_decision");
}

pub fn undeclared_names(m: &Metrics) {
    m.counter_add("fixture.bogus_counter", 1); //~ ERROR O1
    m.gauge_set("skipper.sst_treshold", 0.5); //~ ERROR O1
    m.observe("iteration.wall_ms", 10.0); //~ ERROR O1
    m.observe_with_exemplar("serve.request_wall_ms", 10.0, 7); //~ ERROR O1
    m.labeled("fixture.bogus_family", "worker").gauge_set(3.0); //~ ERROR O1
    span!("fixture_bogus_span"); //~ ERROR O1
    instant!(Level::Info, "fixture.bogus_event"); //~ ERROR O1
}

pub trait Sink {
    // Definitions are not call sites: `fn observe` must not be checked.
    fn observe(&self, name: &str, value: f64);
}

pub fn dynamic_names_cannot_be_checked(m: &Metrics, name: &str) {
    // Only literal names are checkable; runtime strings pass through.
    m.counter_add(name, 1);
}

pub fn waived(m: &Metrics) {
    // lint:allow(metric): fixture — experimental name pending a registry entry
    m.counter_add("fixture.experimental", 1);
}
