// lint-fixture: scope=s1
//! S1 fixture: `unsafe` needs a `// SAFETY:` comment on the same line or
//! up to two lines above. Unlike every other rule, S1 also applies to
//! test code.

pub fn undocumented(ptr: *const f32) -> f32 {
    unsafe { *ptr } //~ ERROR S1
}

pub fn documented(ptr: *const f32, len: usize) -> &'static [f32] {
    // SAFETY: the caller guarantees `ptr` is valid for `len` floats
    unsafe { std::slice::from_raw_parts(ptr, len) }
}

pub fn documented_same_line(ptr: *const u8) -> u8 {
    unsafe { *ptr } // SAFETY: validated non-null by the caller
}

pub fn waived(ptr: *const f32) -> f32 {
    // lint:allow(safety): fixture — soundness argued in the module docs
    unsafe { *ptr }
}

pub fn raw_identifier_is_not_the_keyword() -> u32 {
    let r#unsafe = 7u32; // an identifier *named* unsafe fires nothing
    r#unsafe
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_not_exempt() {
        let x = 1u32;
        let p = &x as *const u32;
        let _ = unsafe { *p }; //~ ERROR S1
    }
}
