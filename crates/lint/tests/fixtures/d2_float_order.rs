// lint-fixture: scope=d2
//! D2 fixture: free-form float accumulation on the (simulated) sharded
//! gradient path. Integer reductions are exact and stay legal.

pub fn hits(grads: &[f32]) -> f32 {
    let a = grads.iter().copied().sum::<f32>(); //~ ERROR D2
    let b = grads.iter().fold(0.0, |acc, g| acc + g); //~ ERROR D2
    let c = grads.iter().map(|g| *g as f64).sum::<f64>(); //~ ERROR D2
    let d = grads.iter().map(|g| 1.0 + g).fold(1.0f64, |acc, g| acc * g as f64); //~ ERROR D2
    a + b + (c + d) as f32
}

pub fn integer_reductions_ok(counts: &[usize]) -> usize {
    let n = counts.iter().copied().sum::<usize>();
    let m = counts.iter().fold(0usize, |acc, c| acc + c);
    n + m
}

pub fn waived(xs: &[f32]) -> f32 {
    // lint:allow(float-order): fixture — single fixed storage-order pass
    xs.iter().copied().sum::<f32>()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_sum_floats() {
        let v = [1.0f32, 2.0];
        assert_eq!(v.iter().copied().sum::<f32>(), 3.0);
    }
}
