// lint-fixture: scope=c2,w1
//! Stale-waiver hygiene for rule W1: a `lint:allow` that waives nothing
//! is itself a finding; one covering a live finding is not, and keys
//! that are not rule ids/categories are prose and stay silent.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;
use std::time::Duration;

static JOBS: Mutex<Vec<u32>> = Mutex::new(Vec::new());

fn live_waiver(rx: &Receiver<u32>) -> u32 {
    let _jobs = JOBS.lock().unwrap();
    // lint:allow(blocking): bounded 1ms timeout keeps the holder responsive
    rx.recv_timeout(Duration::from_millis(1)).unwrap_or(0)
}

fn stale_rule_key(rx: &Receiver<u32>) -> u32 {
    // lint:allow(c2): this drain used to hold the jobs lock //~ ERROR W1
    rx.recv().unwrap_or(0)
}

fn stale_category_key() -> u32 {
    // lint:allow(blocking): nothing on this path blocks anymore //~ ERROR W1
    7
}

fn missing_reason(rx: &Receiver<u32>) -> u32 {
    let _jobs = JOBS.lock().unwrap();
    // lint:allow(blocking) //~ ERROR W1
    rx.recv().unwrap_or(0) //~ ERROR C2
}

fn unknown_key_is_prose() -> u32 {
    // lint:allow(frobnicate): not a rule key; docs may quote the syntax
    11
}
