// lint-fixture: scope=p1
//! P1 fixture: panic-policy hits, per-site waivers, and look-alikes the
//! lexer must treat as data (strings, comments, test code).
//!
//! The tilde-ERROR markers are consumed by `skipper-lint --self-test`; a
//! diagnostic must fire on exactly the marked lines and nowhere else.

pub fn hits(x: Option<u32>, r: Result<u32, String>) -> u32 {
    let a = x.unwrap(); //~ ERROR P1
    let b = r.expect("present"); //~ ERROR P1
    if a + b > 100 {
        panic!("overflow"); //~ ERROR P1
    }
    if a == 7 {
        todo!() //~ ERROR P1
    }
    if b == 9 {
        unimplemented!() //~ ERROR P1
    }
    a + b
}

pub fn waived_above(x: Option<u32>) -> u32 {
    // lint:allow(panic): fixture — a justified waiver on the line above
    x.unwrap()
}

pub fn waived_same_line(x: Option<u32>) -> u32 {
    x.unwrap() // lint:allow(P1): the rule id works as the waiver key too
}

pub fn look_alikes() -> String {
    // Literals containing panic-shaped text are data, not code:
    let s = "please call .unwrap() responsibly";
    let r = r#"raw: x.unwrap(); y.expect("k"); panic!("no")"#;
    // a line comment mentioning .unwrap() and panic!("x") fires nothing
    /* block comment: .unwrap() /* nested: .expect("y") */ still comment */
    let unwrap = 3; // an identifier named unwrap without `.`/`(` is inert
    format!("{s}{r}{unwrap}")
}

// Out of scope for P1 (scope=p1 disables O2 here): an undeclared knob
// string must NOT fire in this file.
pub const OUT_OF_SCOPE: &str = "SKIPPER_NOT_CHECKED_HERE";

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        Result::<u32, String>::Ok(2).expect("fine in test code");
    }
}
