// lint-fixture: scope=all
//! Parser stress fixture: legal-but-awkward shapes the block parser,
//! symbol table and concurrency engine must survive without misparsing.
//! Every rule is in scope and the expected finding count is zero.

/// Generic bounds with nested angle brackets, plus a comparison that
/// must not be confused for one.
fn nested_generics<T: IntoIterator<Item = Vec<Option<u32>>>>(xs: T, y: usize) -> usize {
    let mut n = 0usize;
    for v in xs {
        if v.len() < y {
            n += v.len();
        }
    }
    n
}

/// Shifts next to generic-looking tokens.
fn shifty(a: u32, b: u32) -> u32 {
    let c = a >> 2;
    let d = b << 1;
    c.max(d)
}

/// A function returning a function pointer with its own arrow.
fn higher(flip: bool) -> fn(u32) -> u32 {
    fn double(x: u32) -> u32 {
        x * 2
    }
    fn triple(x: u32) -> u32 {
        x * 3
    }
    if flip {
        double
    } else {
        triple
    }
}

/// Closures, match arms (fat arrows are not returns) and a trait object.
fn dispatch(sel: u8) -> Box<dyn Fn(u32) -> u32> {
    match sel {
        0 => Box::new(|x| x + 1),
        1 => Box::new(move |x: u32| -> u32 { x.saturating_sub(1) }),
        _ => Box::new(|x| x),
    }
}

/// Braces inside literals must not unbalance the block parser.
fn literals() -> (char, &'static str, &'static str) {
    let open = '{';
    let fake = "fn not_a_fn() { let x = '}'; }";
    let raw = r"impl Nothing { }";
    (open, fake, raw)
}

/// Const generics and where clauses.
fn windows<const N: usize, T>(xs: &[T]) -> usize
where
    T: Clone + PartialOrd,
{
    xs.chunks(N.max(1)).count()
}

struct Wrapper<'a, T> {
    inner: &'a [T],
}

impl<'a, T: Copy + Default> Wrapper<'a, T> {
    fn first_or_default(&self) -> T {
        self.inner.first().copied().unwrap_or_default()
    }
}

trait Describe {
    fn describe(&self) -> usize {
        0
    }
}

impl<T: Copy + Default> Describe for Wrapper<'_, T> {
    fn describe(&self) -> usize {
        self.inner.len()
    }
}

mod nested {
    pub mod deeper {
        pub fn leaf(x: i64) -> i64 {
            let f = |y: i64| y.rotate_left(3);
            f(x)
        }
    }
}

/// Turbofish next to comparisons.
fn turbo(xs: &[u16]) -> Vec<u32> {
    let grown = xs.iter().map(|&x| u32::from(x)).collect::<Vec<u32>>();
    grown.iter().filter(|&&g| g < 9_000).copied().collect()
}
