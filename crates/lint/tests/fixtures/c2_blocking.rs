// lint-fixture: scope=c2
//! Seeded lock-held-across-blocking-call sites for rule C2: a direct
//! recv, a sleep, a blocking call hidden behind a helper, one correct
//! (guard dropped first) negative, and one waived timeout.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;
use std::time::Duration;

struct Queue {
    jobs: Mutex<Vec<u32>>,
}

impl Queue {
    fn drain_locked(&self, rx: &Receiver<u32>) -> u32 {
        let mut jobs = self.jobs.lock().unwrap();
        let next = rx.recv().unwrap_or(0); //~ ERROR C2
        jobs.push(next);
        next
    }

    fn sleep_locked(&self) {
        let _jobs = self.jobs.lock().unwrap();
        std::thread::sleep(Duration::from_millis(1)); //~ ERROR C2
    }

    fn chained(&self, rx: &Receiver<u32>) -> u32 {
        let _jobs = self.jobs.lock().unwrap();
        wait_for(rx) //~ ERROR C2
    }

    fn ok_drain(&self, rx: &Receiver<u32>) -> u32 {
        {
            let mut jobs = self.jobs.lock().unwrap();
            jobs.clear();
        }
        rx.recv().unwrap_or(0)
    }

    fn waived(&self, rx: &Receiver<u32>) -> u32 {
        let _jobs = self.jobs.lock().unwrap();
        // lint:allow(blocking): bounded 1ms timeout keeps the holder responsive
        rx.recv_timeout(Duration::from_millis(1)).unwrap_or(0)
    }
}

fn wait_for(rx: &Receiver<u32>) -> u32 {
    rx.recv().unwrap_or(0)
}
