//! The lint's own acceptance tests: the real workspace must be clean, and
//! the seeded fixtures must produce exactly their marked diagnostics.

use skipper_lint::{check_file, check_workspace, relative_path, Manifest, MANIFEST_PATH};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

fn load_manifest(root: &Path) -> Manifest {
    let text = std::fs::read_to_string(root.join(MANIFEST_PATH)).expect("metrics.toml readable");
    Manifest::parse(&text).expect("metrics.toml parses")
}

#[test]
fn workspace_has_no_unwaived_violations() {
    let root = workspace_root();
    let diags = check_workspace(&root, &load_manifest(&root)).expect("workspace lints");
    let active: Vec<String> = diags
        .iter()
        .filter(|d| d.waived.is_none())
        .map(|d| d.render_text())
        .collect();
    assert!(
        active.is_empty(),
        "non-waived lint violations:\n{}",
        active.join("\n")
    );
}

#[test]
fn every_waiver_carries_a_reason() {
    let root = workspace_root();
    let diags = check_workspace(&root, &load_manifest(&root)).expect("workspace lints");
    for d in diags.iter().filter(|d| d.waived.is_some()) {
        let reason = d.waived.as_deref().unwrap_or_default();
        assert!(
            reason.len() >= 10,
            "{}:{} ({}) has a trivial waiver reason: {reason:?}",
            d.file,
            d.line,
            d.rule
        );
    }
}

#[test]
fn every_manifest_entry_carries_a_real_description() {
    // An empty (or placeholder) description documents nothing; the lint
    // reports it as an O1 violation pointing at the manifest line.
    let root = workspace_root();
    let manifest = load_manifest(&root);
    let undescribed = manifest.undescribed();
    assert!(
        undescribed.is_empty(),
        "metrics.toml entries without descriptions: {undescribed:?}"
    );

    // The validation itself fires on both empty and placeholder text.
    let bad = Manifest::parse(
        "[counters]\n\"a.real\" = \"described\"\n\"a.empty\" = \"\"\n\"a.todo\" = \"TODO: describe\"\n",
    )
    .expect("synthetic manifest parses");
    let mut flagged = bad.undescribed();
    flagged.sort();
    assert_eq!(
        flagged,
        vec![
            ("counters".to_string(), "a.empty".to_string(), 3),
            ("counters".to_string(), "a.todo".to_string(), 4),
        ]
    );
    let diags = skipper_lint::manifest_diagnostics(&bad);
    assert_eq!(diags.len(), 2);
    assert!(diags
        .iter()
        .all(|d| d.rule == "O1" && d.file == MANIFEST_PATH));
}

#[test]
fn committed_manifest_is_in_sync_with_the_code() {
    // Every observability name the code emits must be declared; dangling
    // manifest entries are allowed (docs may lead code), missing ones not.
    let root = workspace_root();
    let manifest = load_manifest(&root);
    let names = skipper_lint::extract_workspace_names(&root).expect("extraction");
    for n in names {
        let declared = if n.section == "gauges" {
            manifest.declares_metric(&n.name)
        } else {
            manifest.declares(n.section, &n.name)
        };
        assert!(
            declared,
            "[{}] {} missing from metrics.toml",
            n.section, n.name
        );
    }
}

#[test]
fn fixtures_match_their_seeded_markers() {
    let root = workspace_root();
    let manifest = load_manifest(&root);
    let dir = root.join("crates/lint/tests/fixtures");
    let mut fixture_files = 0usize;
    let mut seeded = 0usize;
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixtures dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    for path in entries {
        fixture_files += 1;
        let src = std::fs::read_to_string(&path).expect("fixture readable");
        let rel = relative_path(&root, &path);
        let mut expected: BTreeMap<(u32, String), usize> = BTreeMap::new();
        for (idx, line) in src.lines().enumerate() {
            if let Some(at) = line.find("//~ ERROR") {
                for rule in line[at + "//~ ERROR".len()..].split_whitespace() {
                    *expected
                        .entry((idx as u32 + 1, rule.to_string()))
                        .or_default() += 1;
                }
            }
        }
        seeded += expected.values().sum::<usize>();
        let mut actual: BTreeMap<(u32, String), usize> = BTreeMap::new();
        for d in check_file(&rel, &src, &manifest) {
            if d.waived.is_none() {
                *actual.entry((d.line, d.rule.to_string())).or_default() += 1;
            }
        }
        assert_eq!(actual, expected, "marker mismatch in {rel}");
    }
    assert!(fixture_files >= 7, "fixture set went missing");
    assert!(seeded >= 20, "fixtures lost their seeded violations");
}

#[test]
fn every_rule_id_has_a_fixture_hit() {
    // The fixture corpus must exercise all six rules, or a regression in
    // one rule could pass the self-test silently.
    let root = workspace_root();
    let manifest = load_manifest(&root);
    let dir = root.join("crates/lint/tests/fixtures");
    let mut hit: Vec<&'static str> = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("fixtures dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("fixture readable");
        let rel = relative_path(&root, &path);
        for d in check_file(&rel, &src, &manifest) {
            if d.waived.is_none() && !hit.contains(&d.rule) {
                hit.push(d.rule);
            }
        }
    }
    hit.sort_unstable();
    let mut all = skipper_lint::RULE_IDS.to_vec();
    all.sort_unstable();
    assert_eq!(hit, all, "rules without fixture coverage");
}
