//! Waiver garbage collection: `strip_stale_waivers` string surgery plus
//! the end-to-end `--fix-waivers` flow (dry-run, apply, convergence) on
//! a throwaway mini-workspace under the cargo tmpdir.

use skipper_lint::{fix_waivers, strip_stale_waivers, Manifest};
use std::fs;
use std::path::Path;

#[test]
fn strip_removes_whole_line_and_trailing_waivers() {
    let src = "fn f() -> u32 {\n    // lint:allow(panic): stale argument\n    let x = 1; // lint:allow(determinism): also stale\n    x\n}\n";
    let (fixed, removed) = strip_stale_waivers(src, &[2, 3]);
    assert_eq!(fixed, "fn f() -> u32 {\n    let x = 1;\n    x\n}\n");
    assert_eq!(removed.len(), 2);
    assert_eq!(removed[0].0, 2);
    assert!(removed[0].1.contains("lint:allow(panic)"));
    assert_eq!(removed[1].0, 3);
}

#[test]
fn strip_touches_only_listed_line_comment_waivers() {
    // Line 2 is not listed; line 3's waiver lives in a block comment and
    // is left for a human; line 4 has no waiver at all.
    let src = "fn f() {\n    // lint:allow(panic): kept, not listed\n    /* lint:allow(panic): in a block comment */\n    let _y = 2;\n}\n";
    let (fixed, removed) = strip_stale_waivers(src, &[3, 4]);
    assert_eq!(fixed, src);
    assert!(removed.is_empty());
}

#[test]
fn fix_waivers_dry_runs_then_applies_then_converges() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("waiver_gc_ws");
    let src_dir = root.join("crates/demo/src");
    fs::create_dir_all(&src_dir).expect("tmp workspace");
    let file = src_dir.join("lib.rs");
    let original =
        "fn f() -> u32 {\n    // lint:allow(panic): this cannot fail because reasons\n    1\n}\n";
    fs::write(&file, original).expect("seed file");
    let manifest = Manifest::parse("").expect("empty manifest");

    let fixes = fix_waivers(&root, &manifest, false).expect("dry run");
    assert_eq!(fixes.len(), 1);
    assert_eq!(fixes[0].file, "crates/demo/src/lib.rs");
    assert_eq!(fixes[0].line, 2);
    assert!(fixes[0].before.contains("lint:allow(panic)"));
    assert_eq!(
        fs::read_to_string(&file).expect("still there"),
        original,
        "dry run must not edit files"
    );

    let fixes = fix_waivers(&root, &manifest, true).expect("apply");
    assert_eq!(fixes.len(), 1);
    assert_eq!(
        fs::read_to_string(&file).expect("still there"),
        "fn f() -> u32 {\n    1\n}\n"
    );

    let fixes = fix_waivers(&root, &manifest, true).expect("second apply");
    assert!(fixes.is_empty(), "GC must converge after one application");
}
