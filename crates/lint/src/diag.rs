//! Diagnostics and report rendering (human text and machine JSON).

use std::fmt::Write as _;

/// The nine rule identifiers, in report order.
pub const RULE_IDS: [&str; 9] = ["D1", "D2", "P1", "O1", "O2", "S1", "C1", "C2", "W1"];

/// One finding at a source position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    pub line: u32,
    pub col: u32,
    /// Rule id (`D1`, `D2`, `P1`, `O1`, `O2`, `S1`).
    pub rule: &'static str,
    pub message: String,
    /// Actionable fix suggestion.
    pub hint: String,
    /// `Some(reason)` when a `// lint:allow(...)` waiver covers the site.
    pub waived: Option<String>,
}

impl Diagnostic {
    /// `file:line:col: RULE message` with the hint on a second line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let waived = if self.waived.is_some() {
            " (waived)"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "{}:{}:{}: {}{} {}",
            self.file, self.line, self.col, self.rule, waived, self.message
        );
        if let Some(reason) = &self.waived {
            let _ = writeln!(out, "    waiver: {reason}");
        } else {
            let _ = writeln!(out, "    hint: {}", self.hint);
        }
        out
    }
}

/// Render the full report as JSON for CI artifact upload.
///
/// Waived findings are included (with their reasons) so the artifact
/// doubles as a waiver audit; only `"active"` findings fail the build.
pub fn render_json(root: &str, diags: &[Diagnostic]) -> String {
    let active = diags.iter().filter(|d| d.waived.is_none()).count();
    let mut out = String::from("{");
    push_kv_str(&mut out, "tool", "skipper-lint");
    out.push(',');
    push_kv_str(&mut out, "version", env!("CARGO_PKG_VERSION"));
    out.push(',');
    push_kv_str(&mut out, "root", root);
    out.push(',');
    let _ = write!(
        out,
        "\"active\":{},\"waived\":{},",
        active,
        diags.len() - active
    );
    out.push_str("\"by_rule\":{");
    for (i, rule) in RULE_IDS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let n = diags
            .iter()
            .filter(|d| d.rule == *rule && d.waived.is_none())
            .count();
        let _ = write!(out, "\"{rule}\":{n}");
    }
    out.push_str("},\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        push_kv_str(&mut out, "file", &d.file);
        let _ = write!(out, ",\"line\":{},\"col\":{},", d.line, d.col);
        push_kv_str(&mut out, "rule", d.rule);
        out.push(',');
        push_kv_str(&mut out, "message", &d.message);
        out.push(',');
        push_kv_str(&mut out, "hint", &d.hint);
        out.push(',');
        match &d.waived {
            Some(reason) => push_kv_str(&mut out, "waived", reason),
            None => out.push_str("\"waived\":null"),
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Render the report as SARIF 2.1.0 so findings can annotate PRs
/// (GitHub code scanning ingests this directly). Waived findings are
/// included at `note` level — the annotation shows the waiver reason —
/// and active findings at `error`.
pub fn render_sarif(diags: &[Diagnostic]) -> String {
    let mut out = String::from(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{",
    );
    out.push_str("\"tool\":{\"driver\":{\"name\":\"skipper-lint\",");
    push_kv_str(&mut out, "version", env!("CARGO_PKG_VERSION"));
    out.push_str(",\"informationUri\":\"https://github.com\",\"rules\":[");
    for (i, rule) in RULE_IDS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let short = crate::explain::explain(rule)
            .and_then(|doc| doc.lines().next())
            .unwrap_or(rule);
        out.push('{');
        push_kv_str(&mut out, "id", rule);
        out.push_str(",\"shortDescription\":{");
        push_kv_str(&mut out, "text", short);
        out.push_str("}}");
    }
    out.push_str("]}},\"results\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        push_kv_str(&mut out, "ruleId", d.rule);
        out.push(',');
        let level = if d.waived.is_some() { "note" } else { "error" };
        push_kv_str(&mut out, "level", level);
        out.push_str(",\"message\":{");
        let text = match &d.waived {
            Some(reason) => format!("{} [waived: {reason}]", d.message),
            None => format!("{}. {}", d.message, d.hint),
        };
        push_kv_str(&mut out, "text", &text);
        out.push_str("},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{");
        push_kv_str(&mut out, "uri", &d.file);
        let _ = write!(
            out,
            "}},\"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}]}}",
            d.line, d.col
        );
    }
    out.push_str("]}]}");
    out
}

fn push_kv_str(out: &mut String, key: &str, value: &str) {
    push_json_string(out, key);
    out.push(':');
    push_json_string(out, value);
}

/// Append `value` as a JSON string literal.
pub fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
