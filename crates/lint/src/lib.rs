//! `skipper-lint` — workspace-aware static analysis for the Skipper
//! reproduction.
//!
//! Clippy enforces Rust hygiene; this crate enforces *Skipper* hygiene:
//! the determinism, panic-policy and observability contracts the paper's
//! approximate-BPTT semantics depend on (a nondeterministic reduction
//! order changes `s_t`, which changes the SST percentile, which changes
//! which timesteps get skipped). See [`rules`] for the rule catalog and
//! DESIGN.md §10 for the narrative version.
//!
//! The crate is dependency-free and exposes everything the binary does so
//! tests (and future tooling) can drive the engine in-process.

pub mod diag;
pub mod explain;
pub mod lexer;
pub mod manifest;
pub mod rules;

pub use diag::{render_json, Diagnostic, RULE_IDS};
pub use manifest::Manifest;
pub use rules::{check_file, extract_names, scope_for_path, ObsName, Scope};

use std::path::{Path, PathBuf};

/// Default manifest location relative to the workspace root.
pub const MANIFEST_PATH: &str = "crates/lint/metrics.toml";

/// Directories scanned below the workspace root: every crate's `src`
/// tree plus the root package's `src`. Crate `tests/` directories,
/// `vendor/`, `examples/` and `target/` are intentionally out of scope.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            collect_rs(&entry.join("src"), &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes (diagnostics are stable
/// across platforms and CI).
pub fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.to_string_lossy().replace('\\', "/")
}

/// Lint every workspace file against `manifest`. Returns all findings,
/// waived ones included; I/O errors surface as `Err`.
pub fn check_workspace(root: &Path, manifest: &Manifest) -> std::io::Result<Vec<Diagnostic>> {
    let mut diags = manifest_diagnostics(manifest);
    for file in workspace_files(root)? {
        let src = std::fs::read_to_string(&file)?;
        let rel = relative_path(root, &file);
        diags.extend(check_file(&rel, &src, manifest));
    }
    Ok(diags)
}

/// O1 findings against the manifest itself: every registered name must
/// carry a real description (an empty or placeholder one used to render
/// as a "TODO: describe" stub in `--dump-manifest` output and say
/// nothing to an operator reading `/metrics.json`).
pub fn manifest_diagnostics(manifest: &Manifest) -> Vec<Diagnostic> {
    manifest
        .undescribed()
        .into_iter()
        .map(|(section, name, line)| Diagnostic {
            file: MANIFEST_PATH.to_string(),
            line,
            col: 1,
            rule: "O1",
            message: format!("manifest entry \"{name}\" in [{section}] has no description"),
            hint: "write one line saying what the name measures and when it moves; \
                   an empty description documents nothing"
                .to_string(),
            waived: None,
        })
        .collect()
}

/// Extract every observability name in the workspace (non-test code),
/// deduplicated and sorted — the source of truth for `--dump-manifest`.
pub fn extract_workspace_names(root: &Path) -> std::io::Result<Vec<ObsName>> {
    let mut names = Vec::new();
    for file in workspace_files(root)? {
        let src = std::fs::read_to_string(&file)?;
        let rel = relative_path(root, &file);
        names.extend(extract_names(&rel, &src));
    }
    names.sort();
    names.dedup();
    Ok(names)
}
