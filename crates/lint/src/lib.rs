//! `skipper-lint` — workspace-aware static analysis for the Skipper
//! reproduction.
//!
//! Clippy enforces Rust hygiene; this crate enforces *Skipper* hygiene:
//! the determinism, panic-policy and observability contracts the paper's
//! approximate-BPTT semantics depend on (a nondeterministic reduction
//! order changes `s_t`, which changes the SST percentile, which changes
//! which timesteps get skipped). See [`rules`] for the rule catalog and
//! DESIGN.md §10 for the narrative version.
//!
//! The crate is dependency-free and exposes everything the binary does so
//! tests (and future tooling) can drive the engine in-process.

pub mod conc;
pub mod diag;
pub mod explain;
pub mod lexer;
pub mod manifest;
pub mod parser;
pub mod rules;

pub use conc::{Analysis, LockEdge};
pub use diag::{render_json, render_sarif, Diagnostic, RULE_IDS};
pub use manifest::Manifest;
pub use rules::{check_file, check_sources, extract_names, scope_for_path, ObsName, Scope};

use std::path::{Path, PathBuf};

/// Default manifest location relative to the workspace root.
pub const MANIFEST_PATH: &str = "crates/lint/metrics.toml";

/// Directories scanned below the workspace root: every crate's `src`
/// tree plus the root package's `src`. Crate `tests/` directories,
/// `vendor/`, `examples/` and `target/` are intentionally out of scope.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            collect_rs(&entry.join("src"), &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes (diagnostics are stable
/// across platforms and CI).
pub fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.to_string_lossy().replace('\\', "/")
}

/// Read every workspace source file as `(rel path, contents)` pairs —
/// the unit the interprocedural passes operate on.
pub fn read_workspace_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut sources = Vec::new();
    for file in workspace_files(root)? {
        let src = std::fs::read_to_string(&file)?;
        sources.push((relative_path(root, &file), src));
    }
    Ok(sources)
}

/// Lint every workspace file against `manifest`. The whole file set is
/// checked as one unit so the lock-order graph (C1) sees cross-crate
/// cycles. Returns all findings, waived ones included; I/O errors
/// surface as `Err`.
pub fn check_workspace(root: &Path, manifest: &Manifest) -> std::io::Result<Vec<Diagnostic>> {
    let mut diags = manifest_diagnostics(manifest);
    diags.extend(check_sources(&read_workspace_sources(root)?, manifest));
    Ok(diags)
}

/// Run only the concurrency engine over the workspace: the lock-order
/// graph behind `--dump-lock-graph` and the obs lock-witness subset test.
pub fn workspace_analysis(root: &Path) -> std::io::Result<Analysis> {
    Ok(rules::analyze_concurrency(&read_workspace_sources(root)?))
}

/// One stale waiver removed (or removable) by `--fix-waivers`.
#[derive(Debug, Clone)]
pub struct WaiverFix {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line the stale `lint:allow` lives on.
    pub line: u32,
    /// The source line before the fix, trimmed (for the dry-run report).
    pub before: String,
}

/// Delete stale `lint:allow` comments (every unwaived W1 finding) from
/// workspace files. Dry-run unless `apply`; returns what was (or would
/// be) removed. Only line-comment waivers are fixed — a `lint:allow`
/// inside a block comment is reported by W1 but left for a human.
pub fn fix_waivers(
    root: &Path,
    manifest: &Manifest,
    apply: bool,
) -> std::io::Result<Vec<WaiverFix>> {
    let sources = read_workspace_sources(root)?;
    let diags = check_sources(&sources, manifest);
    let mut stale: std::collections::BTreeMap<&str, Vec<u32>> = std::collections::BTreeMap::new();
    for d in diags
        .iter()
        .filter(|d| d.rule == "W1" && d.waived.is_none())
    {
        stale.entry(d.file.as_str()).or_default().push(d.line);
    }
    let mut fixes = Vec::new();
    for (rel, src) in &sources {
        let Some(lines) = stale.get(rel.as_str()) else {
            continue;
        };
        let (fixed, removed) = strip_stale_waivers(src, lines);
        for (line_no, before) in removed {
            fixes.push(WaiverFix {
                file: rel.clone(),
                line: line_no,
                before,
            });
        }
        if apply && fixed != *src {
            std::fs::write(root.join(rel), fixed)?;
        }
    }
    Ok(fixes)
}

/// Remove the `// lint:allow…` comment from each listed 1-based line:
/// a line left empty disappears entirely, a trailing comment is cut back
/// to the code before it. Returns the fixed source plus
/// `(line, original)` for each edit. Lines without a line-comment waiver
/// (e.g. block comments) are left untouched.
pub fn strip_stale_waivers(src: &str, lines: &[u32]) -> (String, Vec<(u32, String)>) {
    let mut removed = Vec::new();
    let mut out = String::with_capacity(src.len());
    for (i, line) in src.lines().enumerate() {
        let line_no = i as u32 + 1;
        if lines.contains(&line_no) {
            if let Some(cut) = line
                .find("lint:allow(")
                .and_then(|at| line[..at].rfind("//"))
            {
                removed.push((line_no, line.trim().to_string()));
                let kept = line[..cut].trim_end();
                if kept.trim().is_empty() {
                    continue; // The whole line was the waiver: drop it.
                }
                out.push_str(kept);
                out.push('\n');
                continue;
            }
        }
        out.push_str(line);
        out.push('\n');
    }
    (out, removed)
}

/// O1 findings against the manifest itself: every registered name must
/// carry a real description (an empty or placeholder one used to render
/// as a "TODO: describe" stub in `--dump-manifest` output and say
/// nothing to an operator reading `/metrics.json`).
pub fn manifest_diagnostics(manifest: &Manifest) -> Vec<Diagnostic> {
    manifest
        .undescribed()
        .into_iter()
        .map(|(section, name, line)| Diagnostic {
            file: MANIFEST_PATH.to_string(),
            line,
            col: 1,
            rule: "O1",
            message: format!("manifest entry \"{name}\" in [{section}] has no description"),
            hint: "write one line saying what the name measures and when it moves; \
                   an empty description documents nothing"
                .to_string(),
            waived: None,
        })
        .collect()
}

/// Extract every observability name in the workspace (non-test code),
/// deduplicated and sorted — the source of truth for `--dump-manifest`.
pub fn extract_workspace_names(root: &Path) -> std::io::Result<Vec<ObsName>> {
    let mut names = Vec::new();
    for file in workspace_files(root)? {
        let src = std::fs::read_to_string(&file)?;
        let rel = relative_path(root, &file);
        names.extend(extract_names(&rel, &src));
    }
    names.sort();
    names.dedup();
    Ok(names)
}
