//! `skipper-lint` CLI.
//!
//! ```text
//! cargo run -p skipper-lint                      # lint the workspace
//! cargo run -p skipper-lint -- --format json     # machine-readable report
//! cargo run -p skipper-lint -- --explain P1      # rule documentation
//! cargo run -p skipper-lint -- --self-test       # run over the seeded fixtures
//! cargo run -p skipper-lint -- --dump-manifest   # regenerate metrics.toml skeleton
//! cargo run -p skipper-lint -- --dump-lock-graph # lock-order graph as DOT
//! cargo run -p skipper-lint -- --fix-waivers     # list stale waivers (--apply edits)
//! ```
//!
//! Exit codes: 0 clean, 1 non-waived diagnostics (or self-test mismatch),
//! 2 usage / IO / manifest errors.

use skipper_lint::{
    check_file, explain::explain, extract_workspace_names, relative_path, render_json,
    render_sarif, workspace_files, Manifest, ObsName, RULE_IDS,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    manifest: Option<PathBuf>,
    format: Format,
    out: Option<PathBuf>,
    mode: Mode,
    /// With `--fix-waivers`: actually edit files instead of dry-running.
    apply: bool,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

enum Mode {
    Check,
    Explain(String),
    ListRules,
    SelfTest,
    DumpManifest,
    DumpLockGraph,
    FixWaivers,
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("skipper-lint: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match &args.mode {
        Mode::Explain(rule) => return run_explain(rule),
        Mode::ListRules => return run_list_rules(),
        Mode::SelfTest => run_self_test(&args),
        Mode::DumpManifest => run_dump_manifest(&args),
        Mode::DumpLockGraph => run_dump_lock_graph(&args),
        Mode::FixWaivers => run_fix_waivers(&args),
        Mode::Check => run_check(&args),
    };
    match result {
        Ok(code) => code,
        Err(err) => {
            eprintln!("skipper-lint: {err}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage: skipper-lint [--root DIR] [--manifest FILE] [--format text|json|sarif]
                    [--out FILE] [--explain RULE | --list-rules |
                     --self-test | --dump-manifest | --dump-lock-graph |
                     --fix-waivers [--apply]]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        manifest: None,
        format: Format::Text,
        out: None,
        mode: Mode::Check,
        apply: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => args.root = PathBuf::from(take(&mut it, "--root")?),
            "--manifest" => args.manifest = Some(PathBuf::from(take(&mut it, "--manifest")?)),
            "--out" => args.out = Some(PathBuf::from(take(&mut it, "--out")?)),
            "--format" => {
                args.format = match take(&mut it, "--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format {other:?} (text|json|sarif)")),
                }
            }
            "--explain" => args.mode = Mode::Explain(take(&mut it, "--explain")?),
            "--list-rules" => args.mode = Mode::ListRules,
            "--self-test" => args.mode = Mode::SelfTest,
            "--dump-manifest" => args.mode = Mode::DumpManifest,
            "--dump-lock-graph" => args.mode = Mode::DumpLockGraph,
            "--fix-waivers" => args.mode = Mode::FixWaivers,
            "--apply" => args.apply = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    // When invoked via `cargo run -p skipper-lint` the CWD is already the
    // workspace root; when invoked from a crate dir, walk up to it.
    if args.root == Path::new(".") && !Path::new("crates").is_dir() {
        if let Some(root) = find_workspace_root() {
            args.root = root;
        }
    }
    Ok(args)
}

fn take(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn run_explain(rule: &str) -> ExitCode {
    match explain(rule) {
        Some(text) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "skipper-lint: unknown rule {rule:?}; known rules: {}",
                RULE_IDS.join(", ")
            );
            ExitCode::from(2)
        }
    }
}

fn run_list_rules() -> ExitCode {
    for rule in RULE_IDS {
        let doc = explain(rule).unwrap_or_default();
        let headline = doc.lines().next().unwrap_or(rule);
        println!("{headline}");
    }
    ExitCode::SUCCESS
}

fn load_manifest(args: &Args) -> Result<Manifest, String> {
    let path = args
        .manifest
        .clone()
        .unwrap_or_else(|| args.root.join(skipper_lint::MANIFEST_PATH));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read manifest {}: {e}", path.display()))?;
    Manifest::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn run_check(args: &Args) -> Result<ExitCode, String> {
    let manifest = load_manifest(args)?;
    let diags = skipper_lint::check_workspace(&args.root, &manifest)
        .map_err(|e| format!("walking workspace: {e}"))?;
    let active: Vec<_> = diags.iter().filter(|d| d.waived.is_none()).collect();
    let waived = diags.len() - active.len();
    let rendered = match args.format {
        Format::Sarif => render_sarif(&diags),
        _ => render_json(&args.root.to_string_lossy(), &diags),
    };
    if let Some(out) = &args.out {
        if let Some(parent) = out.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(out, &rendered).map_err(|e| format!("writing {}: {e}", out.display()))?;
    }
    match args.format {
        // With --out the report already went to the file; keep stdout
        // clean so CI logs show only the human summary lines.
        Format::Json | Format::Sarif if args.out.is_none() => println!("{rendered}"),
        Format::Json | Format::Sarif => {}
        Format::Text => {
            for d in &diags {
                if d.waived.is_none() {
                    print!("{}", d.render_text());
                }
            }
            let files = workspace_files(&args.root)
                .map(|f| f.len())
                .unwrap_or_default();
            println!(
                "skipper-lint: {} file(s), {} violation(s), {} waived site(s)",
                files,
                active.len(),
                waived
            );
        }
    }
    Ok(if active.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Run the engine over `crates/lint/tests/fixtures/` and compare against
/// the `//~ ERROR <RULE…>` markers seeded in the fixture files.
fn run_self_test(args: &Args) -> Result<ExitCode, String> {
    let manifest = load_manifest(args)?;
    let dir = args.root.join("crates/lint/tests/fixtures");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    let mut failures = Vec::new();
    let mut checked = 0usize;
    for path in &entries {
        let src = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        let rel = relative_path(&args.root, path);
        let mut expected: BTreeMap<(u32, String), usize> = BTreeMap::new();
        for (idx, line) in src.lines().enumerate() {
            if let Some(at) = line.find("//~ ERROR") {
                for rule in line[at + "//~ ERROR".len()..].split_whitespace() {
                    *expected
                        .entry((idx as u32 + 1, rule.to_string()))
                        .or_default() += 1;
                }
            }
        }
        let mut actual: BTreeMap<(u32, String), usize> = BTreeMap::new();
        for d in check_file(&rel, &src, &manifest) {
            if d.waived.is_none() {
                *actual.entry((d.line, d.rule.to_string())).or_default() += 1;
            }
        }
        checked += expected.values().sum::<usize>();
        for (key, want) in &expected {
            let got = actual.get(key).copied().unwrap_or_default();
            if got != *want {
                failures.push(format!(
                    "{rel}:{}: expected {want} {} diagnostic(s), got {got}",
                    key.0, key.1
                ));
            }
        }
        for (key, got) in &actual {
            if !expected.contains_key(key) {
                failures.push(format!(
                    "{rel}:{}: unexpected {} diagnostic ({got} site(s))",
                    key.0, key.1
                ));
            }
        }
    }
    if failures.is_empty() {
        println!(
            "skipper-lint self-test: {} fixture file(s), {} seeded diagnostic(s), all matched",
            entries.len(),
            checked
        );
        Ok(ExitCode::SUCCESS)
    } else {
        for f in &failures {
            eprintln!("self-test: {f}");
        }
        eprintln!("skipper-lint self-test: {} mismatch(es)", failures.len());
        Ok(ExitCode::FAILURE)
    }
}

/// Render the workspace lock-order graph as GraphViz DOT (stdout, or
/// `--out FILE`). Exit code reflects acyclicity: cycles are C1 material.
fn run_dump_lock_graph(args: &Args) -> Result<ExitCode, String> {
    let analysis = skipper_lint::workspace_analysis(&args.root)
        .map_err(|e| format!("walking workspace: {e}"))?;
    let dot = analysis.render_dot();
    if let Some(out) = &args.out {
        if let Some(parent) = out.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(out, &dot).map_err(|e| format!("writing {}: {e}", out.display()))?;
        eprintln!(
            "skipper-lint: wrote lock-order graph ({} edge(s), {} on cycles) to {}",
            analysis.edge_pairs().len(),
            analysis.cycle_pairs().len(),
            out.display()
        );
    } else {
        print!("{dot}");
    }
    Ok(if analysis.cycle_pairs().is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Delete stale `lint:allow` comments workspace-wide. Dry-run by
/// default; `--apply` edits the files in place.
fn run_fix_waivers(args: &Args) -> Result<ExitCode, String> {
    let manifest = load_manifest(args)?;
    let fixes = skipper_lint::fix_waivers(&args.root, &manifest, args.apply)
        .map_err(|e| format!("fixing waivers: {e}"))?;
    for f in &fixes {
        println!(
            "{}: {}:{}: {}",
            if args.apply {
                "removed"
            } else {
                "would remove"
            },
            f.file,
            f.line,
            f.before
        );
    }
    println!(
        "skipper-lint: {} stale waiver(s){}",
        fixes.len(),
        if args.apply || fixes.is_empty() {
            ""
        } else {
            " (dry run; pass --apply to edit files)"
        }
    );
    Ok(ExitCode::SUCCESS)
}

/// Print a manifest skeleton regenerated from the code: every
/// observability name the workspace currently emits, with descriptions
/// carried over from the committed manifest when present.
fn run_dump_manifest(args: &Args) -> Result<ExitCode, String> {
    let old = load_manifest(args).unwrap_or_default();
    let names =
        extract_workspace_names(&args.root).map_err(|e| format!("walking workspace: {e}"))?;
    println!("# Regenerated by `skipper-lint --dump-manifest`; descriptions are");
    println!("# hand-maintained and survive regeneration when names persist.");
    for section in ["counters", "gauges", "histograms", "spans", "events", "env"] {
        println!("\n[{section}]");
        for name in names.iter().filter(|n: &&ObsName| n.section == section) {
            // New names get an empty description — which the next lint
            // run flags as an O1 violation, forcing a real sentence
            // instead of shipping a "TODO: describe" placeholder.
            let desc = old
                .sections
                .values()
                .find_map(|s| s.get(&name.name))
                .cloned()
                .unwrap_or_default();
            println!("\"{}\" = \"{}\"", name.name, desc.replace('"', "\\\""));
        }
    }
    Ok(ExitCode::SUCCESS)
}
