//! A brace-matched block parser and function/impl symbol table over the
//! lexed token stream.
//!
//! This is deliberately *not* a Rust grammar: it recognizes exactly the
//! item structure the concurrency analysis needs — `fn` items (free
//! functions, methods inside `impl`/`trait` blocks, functions nested in
//! bodies), with their body token ranges — and treats everything else as
//! opaque token soup. The invariants it does guarantee:
//!
//! * It never panics, on any token stream (see the proptest in
//!   `tests/lexer_and_rules.rs`): every scan is bounds-checked and every
//!   matcher terminates at end-of-stream.
//! * Body ranges are brace-exact: generics (`fn f<F: Fn(u8) -> u8>`),
//!   where-clauses, return types with brackets (`-> [u8; 4]`) and nested
//!   closures do not confuse the `{`-finder, because parens/brackets are
//!   depth-tracked and `->` arrows are never counted as generic closers.
//! * Methods carry their `impl` type name so the symbol table can keep
//!   same-named methods from different types apart when it wants to.

use crate::lexer::{Tok, TokKind};

/// One `fn` item discovered in a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's bare name (`run_iteration`, not `Coordinator::…`).
    pub name: String,
    /// Enclosing `impl`/`trait` type name for methods, `None` for free
    /// functions.
    pub self_ty: Option<String>,
    /// Whether the signature contains a `self` receiver (method call
    /// syntax resolves only to these; `Type::assoc()` resolves to both).
    pub has_self: bool,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// 1-based source line of the `fn` keyword.
    pub line: u32,
    /// Inclusive token range `[open_brace, close_brace]` of the body;
    /// `None` for bodiless declarations (trait methods, extern fns).
    pub body: Option<(usize, usize)>,
}

/// Parse every `fn` item in a token stream, including ones nested inside
/// `impl`/`trait`/`mod` blocks and other function bodies.
pub fn parse_fns(toks: &[Tok]) -> Vec<FnItem> {
    let mut out = Vec::new();
    parse_items(toks, 0, toks.len(), None, &mut out, 0);
    out
}

/// Recursion guard: pathological nesting (proptest inputs) stops
/// descending instead of blowing the stack.
const MAX_DEPTH: usize = 64;

fn parse_items(
    toks: &[Tok],
    start: usize,
    end: usize,
    self_ty: Option<&str>,
    out: &mut Vec<FnItem>,
    depth: usize,
) {
    if depth > MAX_DEPTH {
        return;
    }
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.is_comment() {
            i += 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "fn" => {
                    if let Some(item) = parse_fn(toks, i, end, self_ty) {
                        let body = item.body;
                        let after = body.map(|(_, close)| close + 1);
                        out.push(item);
                        if let Some((open, close)) = body {
                            // Items nested in the body (helper fns, local
                            // impls) are their own scopes.
                            parse_items(toks, open + 1, close.min(end), None, out, depth + 1);
                        }
                        i = after.unwrap_or(i + 1).max(i + 1);
                        continue;
                    }
                }
                "impl" | "trait" => {
                    if let Some((ty, open, close)) = parse_type_block(toks, i, end) {
                        parse_items(
                            toks,
                            open + 1,
                            close.min(end),
                            ty.as_deref(),
                            out,
                            depth + 1,
                        );
                        i = close + 1;
                        continue;
                    }
                }
                "mod" => {
                    // `mod name { … }`: descend without changing self_ty;
                    // `mod name;` is opaque.
                    if let Some((open, close)) = mod_body(toks, i, end) {
                        parse_items(toks, open + 1, close.min(end), None, out, depth + 1);
                        i = close + 1;
                        continue;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
}

/// Parse a `fn` item whose `fn` keyword is at `i`. Returns `None` when
/// the token is not actually an item head (`fn` in a type position like
/// `fn(u8) -> u8` has no name ident after it).
fn parse_fn(toks: &[Tok], i: usize, end: usize, self_ty: Option<&str>) -> Option<FnItem> {
    let name_idx = next_code(toks, i + 1, end)?;
    let name_tok = &toks[name_idx];
    if name_tok.kind != TokKind::Ident {
        return None; // `fn(u8)` type position, or garbage.
    }
    let mut j = next_code(toks, name_idx + 1, end)?;
    // Optional generic parameter list.
    if toks[j].is_punct('<') {
        j = skip_generics(toks, j, end)?;
        j = next_code(toks, j, end)?;
    }
    if !toks[j].is_punct('(') {
        return None;
    }
    let params_close = match_delim(toks, j, end, '(', ')')?;
    let has_self = (j + 1..params_close).any(|k| toks[k].is_ident("self"));
    // Return type / where clause, then `{` or `;`.
    let mut k = params_close + 1;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let body = loop {
        let idx = next_code(toks, k, end)?;
        let t = &toks[idx];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if paren <= 0 && bracket <= 0 {
            if t.is_punct('{') {
                let close = match_delim(toks, idx, end, '{', '}')?;
                break Some((idx, close));
            }
            if t.is_punct(';') {
                break None;
            }
        }
        k = idx + 1;
    };
    Some(FnItem {
        name: name_tok.text.clone(),
        self_ty: self_ty.map(str::to_string),
        has_self,
        fn_tok: i,
        line: toks[i].line,
        body,
    })
}

/// Parse an `impl`/`trait` block head at `i`; returns `(type name, body
/// open, body close)`. The type name is the last path ident before the
/// body brace — for `impl Trait for Type` that is `Type`, for
/// `impl<T> Stack<T>` it is `Stack`, for `trait Sink` it is `Sink`.
fn parse_type_block(toks: &[Tok], i: usize, end: usize) -> Option<(Option<String>, usize, usize)> {
    let mut j = i + 1;
    let mut last_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut seen_for = false;
    while j < end {
        let t = &toks[j];
        if t.is_comment() {
            j += 1;
            continue;
        }
        if t.is_punct('<') {
            j = skip_generics(toks, j, end)?;
            continue;
        }
        if t.is_punct('{') {
            let close = match_delim(toks, j, end, '{', '}')?;
            let ty = after_for.or(last_ident);
            return Some((ty, j, close));
        }
        if t.is_punct(';') {
            return None; // `impl Trait for Type;` marker impls: opaque.
        }
        if t.kind == TokKind::Ident {
            if t.text == "for" {
                seen_for = true;
            } else if t.text != "where" && t.text != "dyn" && t.text != "mut" {
                if seen_for {
                    after_for = Some(t.text.clone());
                } else {
                    last_ident = Some(t.text.clone());
                }
            }
        }
        j += 1;
    }
    None
}

/// `mod name { … }` body range, or `None` for `mod name;`.
fn mod_body(toks: &[Tok], i: usize, end: usize) -> Option<(usize, usize)> {
    let name = next_code(toks, i + 1, end)?;
    if toks[name].kind != TokKind::Ident {
        return None;
    }
    let brace = next_code(toks, name + 1, end)?;
    if !toks[brace].is_punct('{') {
        return None;
    }
    let close = match_delim(toks, brace, end, '{', '}')?;
    Some((brace, close))
}

/// Index of the next non-comment token at or after `i` (before `end`).
fn next_code(toks: &[Tok], i: usize, end: usize) -> Option<usize> {
    (i..end).find(|&k| !toks[k].is_comment())
}

/// Given `toks[open]` equal to the `open` delimiter, return the index of
/// the matching `close` delimiter.
pub fn match_delim(toks: &[Tok], open: usize, end: usize, o: char, c: char) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().take(end).skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Skip a generic parameter/argument list whose `<` is at `i`; returns
/// the index just past the matching `>`. Arrow returns (`Fn(u8) -> u8`)
/// inside the list are handled by never counting a `>` that directly
/// follows a `-`.
fn skip_generics(toks: &[Tok], i: usize, end: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut k = i;
    let mut prev_minus = false;
    while k < end {
        let t = &toks[k];
        if t.is_comment() {
            k += 1;
            continue;
        }
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !prev_minus {
            depth -= 1;
            if depth == 0 {
                return Some(k + 1);
            }
        }
        prev_minus = t.is_punct('-');
        k += 1;
    }
    None
}
