//! Interprocedural concurrency analysis: lock-acquisition summaries, the
//! global lock-order graph, and the C1/C2 rule families.
//!
//! ## Model
//!
//! A **lock identity** is a string `crate.name`: the workspace crate the
//! acquisition site lives in plus the field/static the guard came from
//! (`obs.sinks`, `core.board`). Three acquisition shapes are recognized:
//!
//! * `named_lock("id", &mutex)` — the explicit form; the literal *is* the
//!   identity, which is what ties the static graph to the runtime lock
//!   witness in `skipper-obs` (both sides use the same string).
//! * `lock_unpoisoned(expr)` — identity from the last top-level
//!   identifier of `expr` (`threads()` → `threads`, `&ts.stack` →
//!   `stack`).
//! * `recv.lock()` / `recv.read()` / `recv.write()` with **no arguments**
//!   — identity from the receiver chain's last field (`self.board.lock()`
//!   → `board`). `.read(buf)`/`.write(buf)` *with* arguments are I/O, and
//!   blocking (see C2).
//!
//! **Guard lifetimes** are approximated syntactically: a `let`-bound
//! guard lives to the end of its enclosing block (or an explicit
//! `drop(name)`); an unbound guard lives to the end of its statement, or
//! through the whole block when the statement is a control-flow header
//! (`for x in m.lock().iter()`, `match m.lock() { … }` — scrutinee
//! temporaries really do live that long). Guards are assumed not to
//! escape the function that acquired them; the two helpers that *do*
//! hand guards around (`lock_unpoisoned`, `named_lock`) are modeled as
//! acquisition primitives, and condvar-style guard round-trips surface
//! anyway because the blocking wait is seen at the caller.
//!
//! **Summaries** are computed per function and propagated over the call
//! graph to a fixpoint: the set of lock identities a function may acquire
//! anywhere below it, and whether it may block. Calls resolve by name
//! within the caller's crate first (free functions and methods from the
//! symbol table), then workspace-wide; `skipper_obs::`-style paths
//! resolve into the named crate. A list of well-known std method names
//! (`len`, `push`, `iter`, …) is never resolved to workspace functions —
//! resolving every `.get(` to some crate's unrelated `get` would drown
//! the graph in false edges.
//!
//! Closures are inlined into their enclosing function — right for the
//! immediately-invoked combinator style (`unwrap_or_else`, `map`) that
//! dominates this workspace — **except** arguments to `spawn(...)`,
//! which run on another thread: those are analyzed as detached root
//! scopes (their internal edges and C2 findings still count; they just
//! don't propagate into the spawning function's summary). `span!` /
//! `instant!` macro sites are modeled as touching the span stack, the
//! sink list and (via the non-LIFO repair counter) the metrics registry,
//! because the guard's `Drop` does exactly that.
//!
//! ## Rules
//!
//! * **C1 lock-order inversion** — every edge `A → B` (B acquired while A
//!   held, directly or through calls) joins one global graph; any edge on
//!   a cycle (including `A → A` re-entry) is reported at its acquisition
//!   or call site.
//! * **C2 lock held across a blocking call** — `recv`/`send` and channel
//!   friends, socket/file I/O (`read_exact`, `write_all`, `flush`, I/O
//!   `read`/`write` with a buffer argument), `sleep`, zero-arg `join`,
//!   condvar `wait`/`wait_timeout`, `accept`/`connect` — while any lock
//!   is held, directly or through a call chain (reported with the chain).

use crate::lexer::{Tok, TokKind};
use crate::parser::parse_fns;
use std::collections::{BTreeMap, BTreeSet};

/// Input: one already-lexed file.
pub struct ConcFile<'a> {
    /// Workspace-relative path, forward slashes.
    pub rel: &'a str,
    pub toks: &'a [Tok],
    /// Token-index ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub test_ranges: &'a [(usize, usize)],
}

/// One observed acquisition-order edge: `to` acquired while `from` held.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    /// File (rel path) and position of the acquisition or call site.
    pub file: String,
    pub line: u32,
    pub col: u32,
    /// Callee chain for edges introduced through a call, e.g.
    /// `counter_add`; `None` for directly nested acquisitions.
    pub via: Option<String>,
}

/// A C1/C2 finding before waiver resolution.
#[derive(Debug, Clone)]
pub struct ConcFinding {
    pub file_idx: usize,
    pub line: u32,
    pub col: u32,
    pub rule: &'static str,
    pub message: String,
    pub hint: String,
}

/// The full analysis result.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Deduplicated edges, sorted.
    pub edges: Vec<LockEdge>,
    pub findings: Vec<ConcFinding>,
}

impl Analysis {
    /// Distinct `(from, to)` pairs.
    pub fn edge_pairs(&self) -> BTreeSet<(String, String)> {
        self.edges
            .iter()
            .map(|e| (e.from.clone(), e.to.clone()))
            .collect()
    }

    /// Is there a directed path `from ⇝ to` in the lock-order graph?
    /// The runtime witness records an edge from *every* held lock, so a
    /// chain `A → B → C` legitimately shows up as `A → C` at runtime;
    /// path-reachability is the right containment check.
    pub fn has_path(&self, from: &str, to: &str) -> bool {
        let pairs = self.edge_pairs();
        let adj = adjacency(&pairs);
        reachable(&adj, from, to)
    }

    /// `(from, to)` pairs that participate in a cycle.
    pub fn cycle_pairs(&self) -> BTreeSet<(String, String)> {
        let pairs = self.edge_pairs();
        let adj = adjacency(&pairs);
        let on_cycle: Vec<(String, String)> = pairs
            .iter()
            .filter(|(a, b)| a == b || reachable(&adj, b, a))
            .cloned()
            .collect();
        on_cycle.into_iter().collect()
    }

    /// Render the lock-order graph as GraphViz DOT; cycle edges are
    /// colored red and carry the inversion in their tooltip.
    pub fn render_dot(&self) -> String {
        let cycles = self.cycle_pairs();
        let mut out = String::from(
            "// Lock-order graph generated by `skipper-lint --dump-lock-graph`.\n\
             // An edge A -> B means B was (possibly transitively) acquired while\n\
             // A was held. Red edges participate in a cycle (rule C1).\n\
             digraph lock_order {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n",
        );
        let mut nodes: BTreeSet<&str> = BTreeSet::new();
        for e in &self.edges {
            nodes.insert(&e.from);
            nodes.insert(&e.to);
        }
        for n in nodes {
            out.push_str(&format!("  \"{}\";\n", n.replace('"', "\\\"")));
        }
        let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
        for e in &self.edges {
            let key = (e.from.clone(), e.to.clone());
            if !seen.insert(key.clone()) {
                continue;
            }
            let style = if cycles.contains(&key) {
                ", color=red, penwidth=2.0"
            } else {
                ""
            };
            let via = e
                .via
                .as_deref()
                .map(|v| format!(" via {v}"))
                .unwrap_or_default();
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{}:{}{}\"{}];\n",
                e.from.replace('"', "\\\""),
                e.to.replace('"', "\\\""),
                e.file,
                e.line,
                via,
                style
            ));
        }
        out.push_str("}\n");
        out
    }
}

fn adjacency(pairs: &BTreeSet<(String, String)>) -> BTreeMap<&str, BTreeSet<&str>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in pairs {
        adj.entry(a.as_str()).or_default().insert(b.as_str());
    }
    adj
}

fn reachable(adj: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> bool {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(n) = stack.pop() {
        let Some(next) = adj.get(n) else { continue };
        for m in next {
            if *m == to {
                return true;
            }
            if seen.insert(m) {
                stack.push(m);
            }
        }
    }
    false
}

/// Shortest `from ⇝ to` node path for the C1 message, if one exists.
fn find_path(adj: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> Option<Vec<String>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    let mut seen: BTreeSet<&str> = BTreeSet::from([from]);
    while let Some(n) = queue.pop_front() {
        if n == to && !prev.is_empty() {
            break;
        }
        let Some(next) = adj.get(n) else { continue };
        for m in next {
            if seen.insert(m) || (*m == to && !prev.contains_key(m)) {
                prev.entry(m).or_insert(n);
                queue.push_back(m);
            }
        }
    }
    prev.contains_key(to).then(|| {
        let mut path = vec![to.to_string()];
        let mut cur = to;
        while let Some(p) = prev.get(cur) {
            path.push(p.to_string());
            if *p == from {
                break;
            }
            cur = p;
        }
        path.reverse();
        path
    })
}

/// The crate component of a lock identity for a workspace-relative path:
/// `crates/obs/src/lib.rs` → `obs`, anything under the root `src/` →
/// `skipper`.
pub fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("unknown").to_string(),
        _ => "skipper".to_string(),
    }
}

/// Methods that block the calling thread (C2), recognized by name.
const BLOCKING_METHODS: &[&str] = &[
    "recv",
    "recv_timeout",
    "recv_deadline",
    "send",
    "send_timeout",
    "wait",
    "wait_timeout",
    "accept",
    "connect",
    "read_exact",
    "write_all",
    "read_to_end",
    "read_to_string",
    "flush",
    "sync_all",
    "park",
    "sleep",
];

/// Std-library method names never resolved to workspace functions: a
/// `.get(` on a Vec must not resolve to some crate's unrelated `get`.
const STD_PURE_METHODS: &[&str] = &[
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "get",
    "get_mut",
    "entry",
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "contains",
    "contains_key",
    "remove",
    "extend",
    "clear",
    "sort",
    "sort_by",
    "sort_by_key",
    "retain",
    "drain",
    "dedup",
    "split",
    "splitn",
    "join",
    "clone",
    "to_string",
    "to_owned",
    "to_vec",
    "as_str",
    "as_ref",
    "as_mut",
    "as_bytes",
    "as_slice",
    "from",
    "into",
    "try_into",
    "try_from",
    "parse",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "ok",
    "err",
    "ok_or",
    "ok_or_else",
    "map",
    "map_err",
    "and_then",
    "or_else",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "position",
    "any",
    "all",
    "fold",
    "sum",
    "product",
    "count",
    "min",
    "max",
    "min_by",
    "max_by",
    "rev",
    "zip",
    "chain",
    "take",
    "take_while",
    "skip",
    "skip_while",
    "enumerate",
    "flat_map",
    "flatten",
    "collect",
    "next",
    "peek",
    "last",
    "first",
    "chars",
    "bytes",
    "lines",
    "trim",
    "trim_start",
    "trim_end",
    "starts_with",
    "ends_with",
    "strip_prefix",
    "strip_suffix",
    "replace",
    "replacen",
    "split_whitespace",
    "to_ascii_lowercase",
    "to_ascii_uppercase",
    "eq_ignore_ascii_case",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "is_some_and",
    "is_none_or",
    "is_ok_and",
    "cmp",
    "partial_cmp",
    "eq",
    "ne",
    "hash",
    "fmt",
    "default",
    "deref",
    "deref_mut",
    "index",
    "borrow",
    "borrow_mut",
    "abs",
    "floor",
    "ceil",
    "round",
    "sqrt",
    "powi",
    "powf",
    "exp",
    "ln",
    "min_by_key",
    "max_by_key",
    "clamp",
    "saturating_sub",
    "saturating_add",
    "saturating_duration_since",
    "checked_sub",
    "checked_add",
    "wrapping_mul",
    "wrapping_add",
    "duration_since",
    "elapsed",
    "as_secs_f64",
    "as_micros",
    "as_millis",
    "as_secs",
    "copied",
    "cloned",
    "fetch_add",
    "fetch_sub",
    "fetch_max",
    "load",
    "store",
    "compare_exchange",
    "swap",
    "push_str",
    "push_back",
    "push_front",
    "pop_front",
    "pop_back",
    "front",
    "back",
    "windows",
    "chunks",
    "split_at",
    "split_first",
    "split_last",
    "binary_search",
    "to_le_bytes",
    "to_be_bytes",
    "from_le_bytes",
    "from_be_bytes",
    "rposition",
    "ptr_eq",
    "shape",
    "dims",
];

/// Keywords that can directly precede `(` without being a call.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "return", "loop", "move", "in", "as", "ref", "let", "else",
    "break", "continue", "fn", "impl", "where", "use", "pub", "dyn",
];

/// Std lock-handle receivers that are not deadlock-relevant locks.
const NON_LOCK_RECEIVERS: &[&str] = &["stdout", "stderr", "stdin"];

/// Helper-function names whose *bodies* are acquisition primitives and
/// must not contribute their own (receiver-named) acquisitions.
const PRIMITIVE_FNS: &[&str] = &["lock_unpoisoned", "named_lock"];

/// Synthetic acquire-set for a `span!` / `instant!` macro site: opening
/// pushes the thread's span stack and submits to the sink list; the
/// guard's `Drop` does the same and may bump the non-LIFO repair counter
/// (metrics registry). Modeled so runtime witness edges through span
/// machinery are always a subset of the static graph.
const OBS_MACRO_ACQUIRES: &[&str] = &["obs.span_stack", "obs.sinks", "obs.registry"];

#[derive(Debug, Clone, Default)]
struct Summary {
    acquires: BTreeSet<String>,
    /// `Some(chain)` when the function may block; the chain names the
    /// path down to the primitive (`wait_on → wait_timeout`).
    blocks: Option<String>,
}

#[derive(Debug, Clone)]
struct Call {
    name: String,
    /// Crate the callee lives in when the path names one
    /// (`skipper_obs::…`); `None` → caller's crate, then workspace.
    crate_hint: Option<String>,
    is_method: bool,
    line: u32,
    col: u32,
    held: Vec<String>,
}

#[derive(Debug, Default)]
struct ScopeScan {
    acquires: Vec<(String, u32, u32)>,
    /// Blocking primitive uses: op name, position, locks held there.
    blocking: Vec<(String, u32, u32, Vec<String>)>,
    calls: Vec<Call>,
    /// Directly nested acquisitions: (from, to, line, col).
    edges: Vec<(String, String, u32, u32)>,
    /// `span!`/`instant!` sites with held locks: (line, col, held).
    obs_macros: Vec<(u32, u32, Vec<String>)>,
}

#[derive(Debug)]
struct FnScope {
    file_idx: usize,
    name: String,
    has_self: bool,
    /// Contributes to the named function's summary (false for detached
    /// `spawn` closures).
    root: bool,
    scan: ScopeScan,
}

/// Run the interprocedural analysis over a file set.
pub fn analyze(files: &[ConcFile]) -> Analysis {
    let mut scopes: Vec<FnScope> = Vec::new();
    for (file_idx, f) in files.iter().enumerate() {
        collect_file_scopes(file_idx, f, &mut scopes);
    }
    resolve(files, scopes)
}

fn in_ranges(ranges: &[(usize, usize)], idx: usize) -> bool {
    ranges.iter().any(|&(s, e)| idx >= s && idx <= e)
}

fn collect_file_scopes(file_idx: usize, f: &ConcFile, out: &mut Vec<FnScope>) {
    let fns = parse_fns(f.toks);
    let krate = crate_of(f.rel);
    for (i, item) in fns.iter().enumerate() {
        let Some((open, close)) = item.body else {
            continue;
        };
        if in_ranges(f.test_ranges, item.fn_tok) {
            continue; // Test code is exempt and unreachable from prod code.
        }
        if PRIMITIVE_FNS.contains(&item.name.as_str()) {
            continue; // Modeled as acquisition primitives at call sites.
        }
        // Token spans of *other* functions nested strictly inside this
        // body: excluded from this scope's linear scan.
        let nested: Vec<(usize, usize)> = fns
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .filter_map(|(_, g)| g.body)
            .filter(|&(o, c)| o > open && c < close)
            .collect();
        let code: Vec<usize> = (open + 1..close)
            .filter(|&k| !f.toks[k].is_comment())
            .filter(|&k| !nested.iter().any(|&(o, c)| k >= o && k <= c))
            .collect();
        let mut spawns: Vec<Vec<usize>> = Vec::new();
        let scan = scan_scope(f, &krate, &code, &mut spawns);
        out.push(FnScope {
            file_idx,
            name: item.name.clone(),
            has_self: item.has_self,
            root: true,
            scan,
        });
        // Detached thread bodies: scanned with a fresh held set; their
        // findings and edges are real, but they do not run under the
        // spawning function's locks.
        let mut queue = spawns;
        while let Some(sub) = queue.pop() {
            let mut inner: Vec<Vec<usize>> = Vec::new();
            let scan = scan_scope(f, &krate, &sub, &mut inner);
            queue.extend(inner);
            out.push(FnScope {
                file_idx,
                name: format!("«spawn in {}»", item.name),
                has_self: false,
                root: false,
                scan,
            });
        }
    }
}

/// A lock held at some point of the scan.
#[derive(Debug, Clone)]
struct Held {
    lock: String,
    binding: Option<String>,
    until: Until,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Until {
    /// Released once the scan passes this token index.
    Tok(usize),
    /// Released when brace depth drops below this value.
    Depth(i32),
}

/// Linear scan of one scope's code positions (token indices into
/// `f.toks`), tracking the approximate held-lock set.
fn scan_scope(
    f: &ConcFile,
    krate: &str,
    code: &[usize],
    spawns: &mut Vec<Vec<usize>>,
) -> ScopeScan {
    let toks = f.toks;
    let mut scan = ScopeScan::default();
    let mut held: Vec<Held> = Vec::new();
    let mut depth: i32 = 0;
    let mut stmt_start: usize = 0; // position in `code`
    let mut p = 0usize;
    while p < code.len() {
        let idx = code[p];
        held.retain(|h| !matches!(h.until, Until::Tok(j) if idx > j));
        let t = &toks[idx];
        if t.is_punct('{') {
            depth += 1;
            stmt_start = p + 1;
            p += 1;
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            held.retain(|h| !matches!(h.until, Until::Depth(d) if depth < d));
            stmt_start = p + 1;
            p += 1;
            continue;
        }
        if t.is_punct(';') {
            stmt_start = p + 1;
            p += 1;
            continue;
        }
        if t.kind != TokKind::Ident {
            p += 1;
            continue;
        }
        let next_is = |c: char| code.get(p + 1).is_some_and(|&k| toks[k].is_punct(c));
        let prev_is_dot = p > 0 && toks[code[p - 1]].is_punct('.');

        // Detached thread bodies: skip the whole `spawn(...)` argument
        // list here, queue it for a fresh scan.
        if t.text == "spawn" && next_is('(') {
            if let Some(close) = match_code_delim(toks, code, p + 1, '(', ')') {
                spawns.push(code[p + 2..close].to_vec());
                p = close + 1;
                continue;
            }
        }

        // `drop(name)` releases a named guard.
        if t.text == "drop" && next_is('(') && !prev_is_dot {
            if let Some(&arg_idx) = code.get(p + 2) {
                let arg = &toks[arg_idx];
                if arg.kind == TokKind::Ident
                    && code.get(p + 3).is_some_and(|&k| toks[k].is_punct(')'))
                {
                    if let Some(pos) = held
                        .iter()
                        .rposition(|h| h.binding.as_deref() == Some(arg.text.as_str()))
                    {
                        held.remove(pos);
                    }
                    p += 4;
                    continue;
                }
            }
        }

        // span!/instant! macro sites: synthetic obs acquisitions.
        if (t.text == "span" || t.text == "instant") && next_is('!') {
            if !held.is_empty() {
                let held_names: Vec<String> = held.iter().map(|h| h.lock.clone()).collect();
                for h in &held_names {
                    for m in OBS_MACRO_ACQUIRES {
                        scan.edges.push((h.clone(), m.to_string(), t.line, t.col));
                    }
                }
                scan.obs_macros.push((t.line, t.col, held_names));
            }
            for m in OBS_MACRO_ACQUIRES {
                scan.acquires.push((m.to_string(), t.line, t.col));
            }
            p += 1;
            continue;
        }

        // Acquisition primitives.
        if let Some(lock) = acquisition_at(toks, code, p, krate) {
            for h in &held {
                scan.edges
                    .push((h.lock.clone(), lock.clone(), t.line, t.col));
            }
            scan.acquires.push((lock.clone(), t.line, t.col));
            let binding = let_binding(toks, code, stmt_start, p);
            let until = if binding.is_some() || stmt_starts_with_let(toks, code, stmt_start) {
                Until::Depth(depth)
            } else {
                Until::Tok(temp_release_tok(toks, code, p))
            };
            held.push(Held {
                lock,
                binding,
                until,
            });
            p += 1;
            continue;
        }

        // Blocking primitives.
        if let Some(op) = blocking_at(toks, code, p) {
            let held_names: Vec<String> = held.iter().map(|h| h.lock.clone()).collect();
            scan.blocking.push((op, t.line, t.col, held_names));
            p += 1;
            continue;
        }

        // Ordinary calls feeding the call graph.
        if next_is('(')
            && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
            && !(prev_is_dot && STD_PURE_METHODS.contains(&t.text.as_str()))
        {
            let crate_hint = path_crate_hint(toks, code, p);
            scan.calls.push(Call {
                name: t.text.clone(),
                crate_hint,
                is_method: prev_is_dot,
                line: t.line,
                col: t.col,
                held: held.iter().map(|h| h.lock.clone()).collect(),
            });
        }
        p += 1;
    }
    scan
}

/// Matching close delimiter within a code-position list; `open_pos` is
/// the code position of the opening delimiter.
fn match_code_delim(
    toks: &[Tok],
    code: &[usize],
    open_pos: usize,
    o: char,
    c: char,
) -> Option<usize> {
    let mut depth = 0i64;
    for (q, &k) in code.iter().enumerate().skip(open_pos) {
        if toks[k].is_punct(o) {
            depth += 1;
        } else if toks[k].is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(q);
            }
        }
    }
    None
}

/// Does the statement beginning at code position `s` start with `let`?
fn stmt_starts_with_let(toks: &[Tok], code: &[usize], s: usize) -> bool {
    code.get(s).is_some_and(|&k| toks[k].is_ident("let"))
}

/// `let [mut] NAME = … acquisition …` → `Some(NAME)`; tuple/struct
/// patterns yield `None` (still block-scoped, just not `drop`-trackable).
fn let_binding(toks: &[Tok], code: &[usize], stmt_start: usize, _acq: usize) -> Option<String> {
    if !stmt_starts_with_let(toks, code, stmt_start) {
        return None;
    }
    let mut q = stmt_start + 1;
    while code.get(q).is_some_and(|&k| toks[k].is_ident("mut")) {
        q += 1;
    }
    let &k = code.get(q)?;
    (toks[k].kind == TokKind::Ident).then(|| toks[k].text.clone())
}

/// Token index after which an unbound guard's temporary dies: the end of
/// the current statement (`;`), or — when the statement opens a block
/// before ending (`for`/`if let`/`match` headers) — the block's `}`.
fn temp_release_tok(toks: &[Tok], code: &[usize], p: usize) -> usize {
    let mut depth = 0i64;
    let mut q = p + 1;
    while q < code.len() {
        let k = code[q];
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth < 0 {
                return k; // We were inside an argument list: die with it.
            }
        } else if depth == 0 {
            if t.is_punct(';') || t.is_punct('}') {
                return k;
            }
            if t.is_punct('{') {
                return match_code_delim(toks, code, q, '{', '}')
                    .map(|cq| code[cq])
                    .unwrap_or(k);
            }
        }
        q += 1;
    }
    code.last().copied().unwrap_or(usize::MAX)
}

/// Is the ident at code position `p` a lock acquisition? Returns the lock
/// identity.
fn acquisition_at(toks: &[Tok], code: &[usize], p: usize, krate: &str) -> Option<String> {
    let t = &toks[code[p]];
    let next_is = |off: usize, c: char| code.get(p + off).is_some_and(|&k| toks[k].is_punct(c));
    match t.text.as_str() {
        "named_lock" if next_is(1, '(') => {
            let &k = code.get(p + 2)?;
            (toks[k].kind == TokKind::Str).then(|| toks[k].text.clone())
        }
        "lock_unpoisoned" if next_is(1, '(') => {
            let close = match_code_delim(toks, code, p + 1, '(', ')')?;
            let name = last_arg_ident(toks, code, p + 2, close)?;
            Some(format!("{krate}.{name}"))
        }
        "lock" | "read" | "write" => {
            let prev_dot = p > 0 && toks[code[p - 1]].is_punct('.');
            // Zero-argument call: `.lock()`, RwLock `.read()`/`.write()`.
            if !(prev_dot && next_is(1, '(') && next_is(2, ')')) {
                return None;
            }
            let name = receiver_name(toks, code, p)?;
            if NON_LOCK_RECEIVERS.contains(&name.as_str()) {
                return None;
            }
            Some(format!("{krate}.{name}"))
        }
        _ => None,
    }
}

/// Last meaningful depth-0 identifier of an argument span, skipping
/// accessor combinators (`LOCK.get_or_init(…)` names `LOCK`).
fn last_arg_ident(toks: &[Tok], code: &[usize], start: usize, close: usize) -> Option<String> {
    const ACCESSORS: &[&str] = &["get_or_init", "get", "as_ref", "borrow", "clone", "unwrap"];
    let mut depth = 0i64;
    let mut best: Option<String> = None;
    for &k in code.get(start..close)? {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') || t.is_punct('|') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 && t.kind == TokKind::Ident && !ACCESSORS.contains(&t.text.as_str()) {
            best = Some(t.text.clone());
        }
    }
    best
}

/// Receiver field name for a `.lock()`-style acquisition at code
/// position `p` (the ident): the last field in the receiver chain,
/// skipping call/index groups (`self.board.lock` → `board`,
/// `threads().lock` → `threads`, `carries[i].lock` → `carries`).
fn receiver_name(toks: &[Tok], code: &[usize], p: usize) -> Option<String> {
    let mut q = p.checked_sub(2)?; // Skip the `.`.
    let mut hops = 0usize;
    loop {
        hops += 1;
        if hops > 16 {
            return None;
        }
        let k = code[q];
        let t = &toks[k];
        if t.is_punct(')') || t.is_punct(']') {
            // Walk back over the group to its opener.
            let (open, close) = if t.is_punct(')') {
                ('(', ')')
            } else {
                ('[', ']')
            };
            let mut depth = 0i64;
            loop {
                let tk = &toks[code[q]];
                if tk.is_punct(close) {
                    depth += 1;
                } else if tk.is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                q = q.checked_sub(1)?;
            }
            q = q.checked_sub(1)?;
            continue;
        }
        if t.kind == TokKind::Ident {
            return Some(t.text.clone());
        }
        return None;
    }
}

/// Is the ident at code position `p` a blocking primitive? Returns the
/// op name for the message.
fn blocking_at(toks: &[Tok], code: &[usize], p: usize) -> Option<String> {
    let t = &toks[code[p]];
    let name = t.text.as_str();
    let next_is = |off: usize, c: char| code.get(p + off).is_some_and(|&k| toks[k].is_punct(c));
    if !next_is(1, '(') {
        return None;
    }
    let prev_dot = p > 0 && toks[code[p - 1]].is_punct('.');
    match name {
        // `.join()` with no args is JoinHandle::join; `.join(sep)` is
        // slice join.
        "join" if prev_dot && next_is(2, ')') => Some("join".to_string()),
        // `.read(buf)` / `.write(buf)` *with* args: socket/file I/O (the
        // zero-arg forms are RwLock acquisitions, handled elsewhere).
        "read" | "write" if prev_dot && !next_is(2, ')') => Some(format!("{name} (I/O)")),
        _ if BLOCKING_METHODS.contains(&name) && name != "sleep" && prev_dot => {
            Some(name.to_string())
        }
        // `sleep`, `thread::sleep`, `park` as free/path calls.
        "sleep" | "park" if !prev_dot => Some(name.to_string()),
        _ => None,
    }
}

/// For a path call `head::…::f(`, the crate the head names, when it is a
/// workspace crate alias.
fn path_crate_hint(toks: &[Tok], code: &[usize], p: usize) -> Option<String> {
    // Walk back over `::`-joined segments to the head ident.
    let mut q = p;
    loop {
        if q < 2 {
            break;
        }
        if toks[code[q - 1]].is_punct(':') && toks[code[q - 2]].is_punct(':') {
            let mut r = q.checked_sub(3)?;
            // Skip a turbofish/generic args group `::<…>` conservatively.
            if toks[code[r]].is_punct('>') {
                let mut depth = 0i64;
                loop {
                    let tk = &toks[code[r]];
                    if tk.is_punct('>') {
                        depth += 1;
                    } else if tk.is_punct('<') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    r = r.checked_sub(1)?;
                }
                r = r.checked_sub(1)?;
            }
            if toks[code[r]].kind == TokKind::Ident {
                q = r;
                continue;
            }
            break;
        }
        break;
    }
    if q == p {
        return None;
    }
    let head = toks[code[q]].text.as_str();
    crate_alias(head).map(str::to_string)
}

/// Workspace crate for a path head like `skipper_obs`.
fn crate_alias(head: &str) -> Option<&'static str> {
    Some(match head {
        "skipper_obs" => "obs",
        "skipper_core" => "core",
        "skipper_lint" => "lint",
        "skipper_serve" => "serve",
        "skipper_report" => "report",
        "skipper_tensor" => "tensor",
        "skipper_snn" => "snn",
        "skipper_autograd" => "autograd",
        "skipper_data" => "data",
        "skipper_memprof" => "memprof",
        "skipper_bench" => "bench",
        "skipper" => "skipper",
        _ => return None,
    })
}

/// Resolve summaries to a fixpoint and emit edges + findings.
fn resolve(files: &[ConcFile], scopes: Vec<FnScope>) -> Analysis {
    // Symbol table: (crate, name) → scope indices, split free/method.
    let mut by_crate: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    let mut global: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, s) in scopes.iter().enumerate() {
        if !s.root {
            continue;
        }
        let krate = crate_of(files[s.file_idx].rel);
        by_crate.entry((krate, s.name.clone())).or_default().push(i);
        global.entry(s.name.clone()).or_default().push(i);
    }
    let scopes_ref = &scopes;
    let resolve_call = |caller_crate: &str, c: &Call| -> Vec<usize> {
        // Method-call syntax resolves to fns with a self receiver when
        // any exist; free/assoc calls take every same-named candidate.
        let pick = |cands: Vec<usize>| -> Vec<usize> {
            if c.is_method {
                let methods: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&i| scopes_ref[i].has_self)
                    .collect();
                if !methods.is_empty() {
                    return methods;
                }
            }
            cands
        };
        let krate = c.crate_hint.as_deref().unwrap_or(caller_crate);
        let local = by_crate
            .get(&(krate.to_string(), c.name.clone()))
            .cloned()
            .unwrap_or_default();
        if !local.is_empty() {
            return pick(local);
        }
        if c.crate_hint.is_some() {
            return Vec::new(); // Explicit crate, nothing there: miss.
        }
        pick(global.get(&c.name).cloned().unwrap_or_default())
    };

    // Fixpoint over acquire-sets and blocking flags.
    let mut sums: Vec<Summary> = scopes
        .iter()
        .map(|s| Summary {
            acquires: s.scan.acquires.iter().map(|(l, _, _)| l.clone()).collect(),
            blocks: s.scan.blocking.first().map(|(op, _, _, _)| op.clone()),
        })
        .collect();
    loop {
        let mut changed = false;
        for (i, s) in scopes.iter().enumerate() {
            let caller_crate = crate_of(files[s.file_idx].rel);
            for c in &s.scan.calls {
                for t in resolve_call(&caller_crate, c) {
                    if t == i {
                        // A same-named call from inside the function is
                        // almost always delegation to an inner type's
                        // method (Registry::observe → Histogram::observe),
                        // not recursion; resolving it to ourselves would
                        // fabricate a self-deadlock edge.
                        continue;
                    }
                    let (extra, t_blocks) = (sums[t].acquires.clone(), sums[t].blocks.clone());
                    let before = sums[i].acquires.len();
                    sums[i].acquires.extend(extra);
                    if sums[i].acquires.len() != before {
                        changed = true;
                    }
                    if sums[i].blocks.is_none() {
                        if let Some(chain) = t_blocks {
                            sums[i].blocks = Some(format!("{} → {}", c.name, chain));
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Edges: direct nestings + call-propagated; C2 findings.
    let mut edges: BTreeSet<LockEdge> = BTreeSet::new();
    let mut findings: Vec<ConcFinding> = Vec::new();
    let mut c2_seen: BTreeSet<(usize, u32, u32)> = BTreeSet::new();
    for (si, s) in scopes.iter().enumerate() {
        let rel = files[s.file_idx].rel;
        let caller_crate = crate_of(rel);
        for (from, to, line, col) in &s.scan.edges {
            edges.insert(LockEdge {
                from: from.clone(),
                to: to.clone(),
                file: rel.to_string(),
                line: *line,
                col: *col,
                via: None,
            });
        }
        for (op, line, col, held) in &s.scan.blocking {
            if held.is_empty() {
                continue;
            }
            if c2_seen.insert((s.file_idx, *line, *col)) {
                findings.push(c2_finding(s.file_idx, *line, *col, op, held, None));
            }
        }
        for c in &s.scan.calls {
            if c.held.is_empty() {
                continue;
            }
            let targets = resolve_call(&caller_crate, c);
            let mut acq: BTreeSet<String> = BTreeSet::new();
            let mut chain: Option<String> = None;
            for t in &targets {
                if *t == si {
                    continue; // Same-name delegation, as in the fixpoint.
                }
                acq.extend(sums[*t].acquires.iter().cloned());
                if chain.is_none() {
                    chain = sums[*t].blocks.clone();
                }
            }
            for h in &c.held {
                for m in &acq {
                    if h == m {
                        // Re-acquiring the lock already held through a
                        // call: a self-edge, reported by C1.
                    }
                    edges.insert(LockEdge {
                        from: h.clone(),
                        to: m.clone(),
                        file: rel.to_string(),
                        line: c.line,
                        col: c.col,
                        via: Some(c.name.clone()),
                    });
                }
            }
            if let Some(chain) = chain {
                if c2_seen.insert((s.file_idx, c.line, c.col)) {
                    findings.push(c2_finding(
                        s.file_idx,
                        c.line,
                        c.col,
                        &chain,
                        &c.held,
                        Some(&c.name),
                    ));
                }
            }
        }
    }

    // C1: edges on cycles.
    let analysis_edges: Vec<LockEdge> = edges.into_iter().collect();
    let pairs: BTreeSet<(String, String)> = analysis_edges
        .iter()
        .map(|e| (e.from.clone(), e.to.clone()))
        .collect();
    let adj = adjacency(&pairs);
    let mut c1_seen: BTreeSet<(usize, u32, String, String)> = BTreeSet::new();
    // Map rel path back to file index for findings.
    let rel_to_idx: BTreeMap<&str, usize> =
        files.iter().enumerate().map(|(i, f)| (f.rel, i)).collect();
    for e in &analysis_edges {
        let on_cycle = e.from == e.to || reachable(&adj, &e.to, &e.from);
        if !on_cycle {
            continue;
        }
        let Some(&file_idx) = rel_to_idx.get(e.file.as_str()) else {
            continue;
        };
        if !c1_seen.insert((file_idx, e.line, e.from.clone(), e.to.clone())) {
            continue;
        }
        let cycle = if e.from == e.to {
            format!(
                "`{}` re-acquired while already held (self-deadlock)",
                e.from
            )
        } else {
            let back = find_path(&adj, &e.to, &e.from)
                .map(|p| p.join(" → "))
                .unwrap_or_else(|| format!("{} → … → {}", e.to, e.from));
            format!("cycle: {} → {back}", e.from)
        };
        let via = e
            .via
            .as_deref()
            .map(|v| format!(" (through `{v}`)"))
            .unwrap_or_default();
        findings.push(ConcFinding {
            file_idx,
            line: e.line,
            col: e.col,
            rule: "C1",
            message: format!(
                "lock-order inversion: `{}` acquired while holding `{}`{via}; {cycle}",
                e.to, e.from
            ),
            hint: "two threads taking these locks in opposite orders deadlock; pick one \
                   global order (see --dump-lock-graph) and acquire in that order \
                   everywhere, or waive with the argument why both orders can never run \
                   concurrently: // lint:allow(lock-order): <reason>"
                .to_string(),
        });
    }
    findings.sort_by(|a, b| {
        (a.file_idx, a.line, a.col, a.rule).cmp(&(b.file_idx, b.line, b.col, b.rule))
    });
    Analysis {
        edges: analysis_edges,
        findings,
    }
}

fn c2_finding(
    file_idx: usize,
    line: u32,
    col: u32,
    op: &str,
    held: &[String],
    callee: Option<&str>,
) -> ConcFinding {
    let held_list = held.join("`, `");
    let message = match callee {
        Some(name) => {
            format!("call to `{name}` may block ({op}) while holding lock(s) `{held_list}`")
        }
        None => format!("blocking `{op}` while holding lock(s) `{held_list}`"),
    };
    ConcFinding {
        file_idx,
        line,
        col,
        rule: "C2",
        message,
        hint: "a blocked holder starves every thread queued on the lock (and deadlocks \
               outright if the unblock needs the lock); release the guard before \
               blocking, or waive with the argument why the wait is bounded and safe: \
               // lint:allow(blocking): <reason>"
            .to_string(),
    }
}
