//! Parser for `crates/lint/metrics.toml` — the committed registry of
//! observability names the workspace is allowed to emit.
//!
//! The file is a small TOML subset, kept parseable without a dependency:
//!
//! ```toml
//! # comment
//! [counters]
//! "skipper.steps_skipped" = "timesteps dropped by the skip policy"
//!
//! [env]
//! SKIPPER_WORKERS = "worker-pool size for the sharded engine"
//! ```
//!
//! Sections are `[counters]`, `[gauges]`, `[histograms]`, `[spans]`,
//! `[events]` and `[env]`. Keys may be bare or quoted (quote any name
//! containing `.` or `{`); values are double-quoted description strings.
//! Labelled metric families are declared as `"family{label}"`.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed manifest: section name → (entry name → description).
#[derive(Debug, Default, Clone)]
pub struct Manifest {
    pub sections: BTreeMap<String, BTreeMap<String, String>>,
    /// Manifest line of each `(section, name)` entry, for diagnostics
    /// that point back into the TOML (e.g. empty descriptions).
    pub entry_lines: BTreeMap<(String, String), u32>,
}

/// A manifest syntax error with its line number.
#[derive(Debug)]
pub struct ManifestError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "manifest line {}: {}", self.line, self.message)
    }
}

impl Manifest {
    /// Parse manifest text.
    pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
        let mut manifest = Manifest::default();
        let mut section: Option<String> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(err(lineno, "unterminated [section] header"));
                };
                let name = name.trim();
                if name.is_empty() {
                    return Err(err(lineno, "empty section name"));
                }
                manifest.sections.entry(name.to_string()).or_default();
                section = Some(name.to_string());
                continue;
            }
            let Some(eq) = split_assign(&line) else {
                return Err(err(lineno, "expected `name = \"description\"`"));
            };
            let (key_raw, value_raw) = eq;
            let key = parse_key(key_raw.trim())
                .ok_or_else(|| err(lineno, "malformed key (unbalanced quotes?)"))?;
            let value = parse_string(value_raw.trim())
                .ok_or_else(|| err(lineno, "value must be a double-quoted string"))?;
            let Some(section) = section.as_ref() else {
                return Err(err(lineno, "entry before any [section] header"));
            };
            manifest
                .entry_lines
                .insert((section.clone(), key.clone()), lineno);
            manifest
                .sections
                .get_mut(section)
                .expect("section inserted on header")
                .insert(key, value);
        }
        Ok(manifest)
    }

    /// All entries of one section (empty map when the section is absent).
    pub fn section(&self, name: &str) -> &BTreeMap<String, String> {
        static EMPTY: BTreeMap<String, String> = BTreeMap::new();
        self.sections.get(name).unwrap_or(&EMPTY)
    }

    /// Is `name` declared in `section`?
    pub fn declares(&self, section: &str, name: &str) -> bool {
        self.section(section).contains_key(name)
    }

    /// Is `name` declared in *any* of the metric sections?
    pub fn declares_metric(&self, name: &str) -> bool {
        ["counters", "gauges", "histograms"]
            .iter()
            .any(|s| self.declares(s, name))
    }

    /// Entries whose description is empty or whitespace, as
    /// `(section, name, manifest line)` — a name without a description is
    /// as undocumented as an unregistered one, so the lint treats both as
    /// O1 violations rather than rendering a placeholder.
    pub fn undescribed(&self) -> Vec<(String, String, u32)> {
        let mut out = Vec::new();
        for (section, entries) in &self.sections {
            for (name, description) in entries {
                if description.trim().is_empty() || description.trim() == "TODO: describe" {
                    let line = self
                        .entry_lines
                        .get(&(section.clone(), name.clone()))
                        .copied()
                        .unwrap_or(0);
                    out.push((section.clone(), name.clone(), line));
                }
            }
        }
        out
    }
}

fn err(line: u32, message: &str) -> ManifestError {
    ManifestError {
        line,
        message: message.to_string(),
    }
}

/// Drop a trailing `# comment`, ignoring `#` inside double quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// Split `key = value` at the first `=` outside quotes.
fn split_assign(line: &str) -> Option<(&str, &str)> {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '=' if !in_str => return Some((&line[..i], &line[i + 1..])),
            _ => {}
        }
        escaped = false;
    }
    None
}

/// Bare or double-quoted key.
fn parse_key(s: &str) -> Option<String> {
    if s.starts_with('"') {
        parse_string(s)
    } else if !s.is_empty() && !s.contains('"') {
        Some(s.to_string())
    } else {
        None
    }
}

/// A double-quoted string with `\"` and `\\` escapes.
fn parse_string(s: &str) -> Option<String> {
    let body = s.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(body.len());
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            out.push(chars.next()?);
        } else if c == '"' {
            return None; // Unescaped quote inside the body: reject.
        } else {
            out.push(c);
        }
    }
    Some(out)
}
