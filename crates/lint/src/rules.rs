//! The nine Skipper-specific rules and the check drivers.
//!
//! | id | category      | scope | invariant |
//! |----|---------------|-------|-----------|
//! | D1 | `determinism` | numeric core | no `HashMap`/`HashSet`, wall clocks, or unseeded RNG |
//! | D2 | `float-order` | sharded gradient path | no free-form float reductions |
//! | P1 | `panic`       | library crates | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` |
//! | O1 | `metric`      | everywhere | metric/span names must be declared in `metrics.toml` |
//! | O2 | `env`         | everywhere | `SKIPPER_*` env knobs must be declared in `metrics.toml` |
//! | S1 | `safety`      | everywhere | `unsafe` requires a `// SAFETY:` comment |
//! | C1 | `lock-order`  | everywhere | the global lock-order graph must be acyclic |
//! | C2 | `blocking`    | everywhere | no lock held across a blocking call, even through calls |
//! | W1 | `waiver`      | everywhere | every `lint:allow` must still waive a live finding |
//!
//! D1–S1 are token-local and run per file; C1/C2 run on the
//! interprocedural engine in [`crate::conc`] (block parser, call graph,
//! lock summaries) and need the whole file set to see cross-crate cycles;
//! W1 runs last, over the waiver-usage bookkeeping the other rules left
//! behind.
//!
//! Waivers are **per-site**: a `// lint:allow(<rule-or-category>): <reason>`
//! line comment on the offending line or the line directly above it. The
//! reason is mandatory; blanket per-file waivers do not exist on purpose.
//! W1 closes the loop: a waiver whose rule no longer fires on its site is
//! itself a violation, so waivers cannot outlive the code they excused.
//!
//! Test code (`#[cfg(test)]` / `#[test]` items) is exempt from every rule
//! except S1 — tests may panic, but they may not skip safety comments.

use crate::conc::{self, Analysis, ConcFile};
use crate::diag::Diagnostic;
use crate::lexer::{lex, test_regions, Tok, TokKind};
use crate::manifest::Manifest;
use std::collections::{BTreeMap, BTreeSet};

/// Which rule families apply to one file.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scope {
    /// P1: panic-free library code.
    pub panic_policy: bool,
    /// D1: determinism of the numeric core.
    pub determinism: bool,
    /// D2: fixed-order float accumulation.
    pub float_order: bool,
    /// O1/O2: observability name registries.
    pub observability: bool,
    /// S1: `unsafe` hygiene.
    pub safety: bool,
    /// C1/C2: lock-order and blocking-call discipline.
    pub concurrency: bool,
    /// W1: stale-waiver hygiene.
    pub waiver_hygiene: bool,
}

/// The library crates covered by the panic policy (P1).
pub const LIB_CRATES: [&str; 9] = [
    "core", "obs", "report", "tensor", "autograd", "snn", "data", "memprof", "serve",
];

/// `crates/core/src` files that are part of the numeric core (D1/D2), in
/// addition to all of `crates/autograd/src` and `crates/snn/src`.
pub const CORE_NUMERIC_FILES: [&str; 6] = [
    "engine.rs",
    "checkpoint.rs",
    "sam.rs",
    "bptt.rs",
    "tbptt.rs",
    "lbp.rs",
];

/// Compute the rule scope for a workspace-relative path (forward slashes).
pub fn scope_for_path(rel: &str) -> Scope {
    let lib = LIB_CRATES
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/src/")))
        && !rel.contains("/src/bin/");
    let numeric = rel.starts_with("crates/autograd/src/")
        || rel.starts_with("crates/snn/src/")
        || CORE_NUMERIC_FILES
            .iter()
            .any(|f| rel == format!("crates/core/src/{f}"));
    Scope {
        panic_policy: lib,
        determinism: numeric,
        float_order: numeric,
        observability: true,
        safety: true,
        concurrency: true,
        waiver_hygiene: true,
    }
}

/// Fixture files opt into scopes explicitly via a first-line header
/// comment: `// lint-fixture: scope=p1,d1,d2,o1,o2,s1,c1,c2,w1` (or
/// `scope=all`). Honored only for paths containing `fixtures` so
/// production files can never scope themselves down.
fn fixture_scope(rel: &str, toks: &[Tok]) -> Option<Scope> {
    if !rel.contains("fixtures") {
        return None;
    }
    let header = toks
        .iter()
        .take_while(|t| t.is_comment())
        .find(|t| t.text.trim_start().starts_with("lint-fixture:"))?;
    let spec = header.text.trim_start();
    let spec = spec.strip_prefix("lint-fixture:")?.trim();
    let list = spec.strip_prefix("scope=")?;
    let mut scope = Scope::default();
    for part in list.split(',') {
        match part.trim() {
            "p1" => scope.panic_policy = true,
            "d1" => scope.determinism = true,
            "d2" => scope.float_order = true,
            "o1" | "o2" => scope.observability = true,
            "s1" => scope.safety = true,
            "c1" | "c2" => scope.concurrency = true,
            "w1" => scope.waiver_hygiene = true,
            "all" => {
                scope = Scope {
                    panic_policy: true,
                    determinism: true,
                    float_order: true,
                    observability: true,
                    safety: true,
                    concurrency: true,
                    waiver_hygiene: true,
                }
            }
            _ => {}
        }
    }
    Some(scope)
}

/// An observability name extracted from source (for `--dump-manifest`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ObsName {
    /// Manifest section: `counters`, `gauges`, `histograms`, `spans`,
    /// `events` or `env`.
    pub section: &'static str,
    /// Normalized name (`family{label}` for labelled metrics).
    pub name: String,
}

/// Lint one file in isolation; `rel` must use forward slashes. The
/// concurrency pass sees only this file, so cross-file cycles need
/// [`check_sources`]. Returns all findings, including waived ones
/// (callers decide whether waived findings fail).
pub fn check_file(rel: &str, src: &str, manifest: &Manifest) -> Vec<Diagnostic> {
    check_sources(&[(rel.to_string(), src.to_string())], manifest)
}

/// Lint a file set as one unit: token rules per file, then the
/// interprocedural concurrency pass over all files together (C1 cycles
/// may span crates), then stale-waiver hygiene once every rule has had
/// its chance to use a waiver.
pub fn check_sources(files: &[(String, String)], manifest: &Manifest) -> Vec<Diagnostic> {
    let lexed: Vec<(&str, Vec<Tok>, Scope)> = files
        .iter()
        .map(|(rel, src)| {
            let toks = lex(src);
            let scope = fixture_scope(rel, &toks).unwrap_or_else(|| scope_for_path(rel));
            (rel.as_str(), toks, scope)
        })
        .collect();
    let mut ctxs: Vec<FileCtx> = lexed
        .iter()
        .map(|(rel, toks, _)| FileCtx::new(rel, toks))
        .collect();
    for (ctx, (_, _, scope)) in ctxs.iter_mut().zip(&lexed) {
        ctx.run(*scope, manifest, None);
    }
    let analysis = {
        let inputs: Vec<ConcFile> = ctxs
            .iter()
            .zip(&lexed)
            .map(|(ctx, (rel, toks, _))| ConcFile {
                rel,
                toks,
                test_ranges: &ctx.test_ranges,
            })
            .collect();
        conc::analyze(&inputs)
    };
    for f in &analysis.findings {
        if !lexed[f.file_idx].2.concurrency {
            continue;
        }
        let category = if f.rule == "C1" {
            "lock-order"
        } else {
            "blocking"
        };
        ctxs[f.file_idx].push_at(f.line, f.col, f.rule, category, f.message.clone(), &f.hint);
    }
    for (ctx, (_, _, scope)) in ctxs.iter_mut().zip(&lexed) {
        if scope.waiver_hygiene {
            ctx.rule_w1();
        }
    }
    let mut diags: Vec<Diagnostic> = ctxs.into_iter().flat_map(|c| c.diags).collect();
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    diags
}

/// Run only the concurrency engine over a file set and return the raw
/// analysis (lock-order graph + findings). This is what
/// `--dump-lock-graph` and the obs lock-witness subset test consume.
pub fn analyze_concurrency(files: &[(String, String)]) -> Analysis {
    type Lexed<'a> = (&'a str, Vec<Tok>, Vec<(usize, usize)>);
    let lexed: Vec<Lexed> = files
        .iter()
        .map(|(rel, src)| {
            let toks = lex(src);
            let ranges = test_regions(&toks);
            (rel.as_str(), toks, ranges)
        })
        .collect();
    let inputs: Vec<ConcFile> = lexed
        .iter()
        .map(|(rel, toks, test_ranges)| ConcFile {
            rel,
            toks,
            test_ranges,
        })
        .collect();
    conc::analyze(&inputs)
}

/// Extract every observability name from one file (non-test code only).
pub fn extract_names(rel: &str, src: &str) -> Vec<ObsName> {
    let toks = lex(src);
    let mut ctx = FileCtx::new(rel, &toks);
    let mut names = Vec::new();
    ctx.run(Scope::default(), &Manifest::default(), Some(&mut names));
    names
}

/// Waiver keys W1 understands: rule ids and category names. Anything
/// else inside `lint:allow(…)` is treated as prose (docs showing the
/// syntax with a `<placeholder>` key must not trip the rule).
const WAIVER_KEYS: [&str; 18] = [
    "d1",
    "d2",
    "p1",
    "o1",
    "o2",
    "s1",
    "c1",
    "c2",
    "w1",
    "determinism",
    "float-order",
    "panic",
    "metric",
    "env",
    "safety",
    "lock-order",
    "blocking",
    "waiver",
];

/// Per-file state shared by the rules.
struct FileCtx<'a> {
    rel: &'a str,
    toks: &'a [Tok],
    /// Indices of non-comment tokens, in order.
    code: Vec<usize>,
    /// Token-index ranges covered by `#[cfg(test)]` / `#[test]`.
    test_ranges: Vec<(usize, usize)>,
    /// Comment text per starting line, for waiver/SAFETY lookup.
    comments: BTreeMap<u32, String>,
    /// `(comment line, key)` pairs of waivers that matched a finding —
    /// the ground truth W1 checks stale waivers against.
    used_waivers: BTreeSet<(u32, String)>,
    diags: Vec<Diagnostic>,
}

impl<'a> FileCtx<'a> {
    fn new(rel: &'a str, toks: &'a [Tok]) -> FileCtx<'a> {
        let code: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let mut comments: BTreeMap<u32, String> = BTreeMap::new();
        for t in toks.iter().filter(|t| t.is_comment()) {
            let slot = comments.entry(t.line).or_default();
            slot.push(' ');
            slot.push_str(&t.text);
        }
        FileCtx {
            rel,
            toks,
            code,
            test_ranges: test_regions(toks),
            comments,
            used_waivers: BTreeSet::new(),
            diags: Vec::new(),
        }
    }

    fn in_test(&self, tok_idx: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|(s, e)| tok_idx >= *s && tok_idx <= *e)
    }

    /// Code token at code-position `p` (None past the end).
    fn ct(&self, p: usize) -> Option<&Tok> {
        self.code.get(p).map(|i| &self.toks[*i])
    }

    /// `// lint:allow(key): reason` on `line` or the line above; accepts
    /// the rule id or its category name as the key (case-insensitive).
    /// A match is recorded in `used_waivers` so W1 can flag the rest.
    fn waiver(&mut self, line: u32, rule: &str, category: &str) -> Option<String> {
        for l in [line, line.saturating_sub(1)] {
            let Some(text) = self.comments.get(&l).cloned() else {
                continue;
            };
            let mut rest = text.as_str();
            while let Some(at) = rest.find("lint:allow(") {
                rest = &rest[at + "lint:allow(".len()..];
                let Some(close) = rest.find(')') else { break };
                let key = rest[..close].trim().to_ascii_lowercase();
                let after = rest[close + 1..].trim_start();
                let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
                if (key == rule.to_ascii_lowercase() || key == category) && !reason.is_empty() {
                    // The reason runs to the end of the comment line.
                    self.used_waivers.insert((l, key));
                    return Some(reason.to_string());
                }
            }
        }
        None
    }

    fn push(&mut self, tok: &Tok, rule: &'static str, category: &str, message: String, hint: &str) {
        self.push_at(tok.line, tok.col, rule, category, message, hint);
    }

    fn push_at(
        &mut self,
        line: u32,
        col: u32,
        rule: &'static str,
        category: &str,
        message: String,
        hint: &str,
    ) {
        let waived = self.waiver(line, rule, category);
        self.diags.push(Diagnostic {
            file: self.rel.to_string(),
            line,
            col,
            rule,
            message,
            hint: hint.to_string(),
            waived,
        });
    }

    fn run(&mut self, scope: Scope, manifest: &Manifest, mut dump: Option<&mut Vec<ObsName>>) {
        let extracting = dump.is_some();
        for p in 0..self.code.len() {
            let idx = self.code[p];
            let in_test = self.in_test(idx);
            let tok = &self.toks[idx];

            if scope.safety && !extracting && tok.is_ident("unsafe") {
                self.rule_s1(p);
            }
            if in_test {
                continue;
            }
            if scope.panic_policy && !extracting {
                self.rule_p1(p);
            }
            if scope.determinism && !extracting {
                self.rule_d1(p);
            }
            if scope.float_order && !extracting {
                self.rule_d2(p);
            }
            if scope.observability || extracting {
                self.rule_o1(p, manifest, dump.as_deref_mut());
                if tok.kind == TokKind::Str {
                    self.rule_o2(p, manifest, dump.as_deref_mut());
                }
            }
        }
    }

    // --- P1: panic policy ------------------------------------------------

    fn rule_p1(&mut self, p: usize) {
        let Some(tok) = self.ct(p).cloned() else {
            return;
        };
        if tok.kind != TokKind::Ident {
            return;
        }
        let next_is = |c: char| self.ct(p + 1).is_some_and(|t| t.is_punct(c));
        let prev_is_dot = p > 0 && self.ct(p - 1).is_some_and(|t| t.is_punct('.'));
        let (what, is_hit) = match tok.text.as_str() {
            "unwrap" | "expect" => (
                format!(".{}() can panic", tok.text),
                prev_is_dot && next_is('('),
            ),
            "panic" | "unimplemented" | "todo" => {
                (format!("{}! aborts the thread", tok.text), next_is('!'))
            }
            _ => return,
        };
        if !is_hit {
            return;
        }
        self.push(
            &tok,
            "P1",
            "panic",
            format!("{what} in a library crate; a panic here takes down a worker thread"),
            "propagate a SkipperError/Result, or waive an infallible site with \
             `// lint:allow(panic): <why this cannot fail>`",
        );
    }

    // --- D1: determinism --------------------------------------------------

    fn rule_d1(&mut self, p: usize) {
        let Some(tok) = self.ct(p).cloned() else {
            return;
        };
        if tok.kind != TokKind::Ident {
            return;
        }
        let (message, hint): (String, &str) = match tok.text.as_str() {
            "HashMap" | "HashSet" => (
                format!(
                    "{} has nondeterministic iteration order inside the numeric core",
                    tok.text
                ),
                "iteration order changes s_t, the SST percentile, and which timesteps get \
                 skipped; use BTreeMap/BTreeSet or an explicitly ordered Vec",
            ),
            "Instant" | "SystemTime" => {
                let bare_type_mention = tok.text == "Instant"
                    && !(self.ct(p + 1).is_some_and(|t| t.is_punct(':'))
                        && self.ct(p + 2).is_some_and(|t| t.is_punct(':'))
                        && self.ct(p + 3).is_some_and(|t| t.is_ident("now")));
                if bare_type_mention {
                    return; // Bare `Instant` type mentions are fine; reads are not.
                }
                (
                    format!("wall-clock read ({}) inside the numeric core", tok.text),
                    "time must never influence training math; move the read out of the \
                     numeric core or waive with `// lint:allow(determinism): <telemetry-only \
                     justification>`",
                )
            }
            "thread_rng" | "from_entropy" | "OsRng" => (
                format!("unseeded RNG ({}) inside the numeric core", tok.text),
                "plumb a seeded StdRng from the session config so reruns and shard \
                 counts reproduce bitwise",
            ),
            _ => return,
        };
        self.push(&tok, "D1", "determinism", message, hint);
    }

    // --- D2: float accumulation ------------------------------------------

    fn rule_d2(&mut self, p: usize) {
        let Some(tok) = self.ct(p).cloned() else {
            return;
        };
        if tok.kind != TokKind::Ident || !(p > 0 && self.ct(p - 1).is_some_and(|t| t.is_punct('.')))
        {
            return;
        }
        let hit = match tok.text.as_str() {
            "sum" | "product" => {
                // `.sum::<f32>()` / `.product::<f64>()`.
                self.ct(p + 1).is_some_and(|t| t.is_punct(':'))
                    && self.ct(p + 2).is_some_and(|t| t.is_punct(':'))
                    && self.ct(p + 3).is_some_and(|t| t.is_punct('<'))
                    && self
                        .ct(p + 4)
                        .is_some_and(|t| t.is_ident("f32") || t.is_ident("f64"))
            }
            "fold" => {
                // `.fold(0.0, …)` / `.fold(0f32, …)`: float seed.
                self.ct(p + 1).is_some_and(|t| t.is_punct('('))
                    && self.ct(p + 2).is_some_and(|t| {
                        t.kind == TokKind::Num
                            && (t.text.contains('.')
                                || t.text.contains("f32")
                                || t.text.contains("f64"))
                    })
            }
            _ => return,
        };
        if !hit {
            return;
        }
        self.push(
            &tok,
            "D2",
            "float-order",
            format!(
                ".{}() float accumulation on the sharded gradient path",
                tok.text
            ),
            "accumulation order is part of the determinism contract; route through the \
             fixed-order pairwise tree reduction (crates/core/src/engine.rs `tree_reduce`) \
             or waive with the ordering argument: `// lint:allow(float-order): <reason>`",
        );
    }

    // --- O1: metric / span name registry ----------------------------------

    fn rule_o1(&mut self, p: usize, manifest: &Manifest, dump: Option<&mut Vec<ObsName>>) {
        let Some(tok) = self.ct(p).cloned() else {
            return;
        };
        if tok.kind != TokKind::Ident {
            return;
        }
        // Skip definitions (`fn observe(...)`) — only call sites matter.
        if p > 0 && self.ct(p - 1).is_some_and(|t| t.is_ident("fn")) {
            return;
        }
        let (section, name, name_tok): (&'static str, String, Tok) = match tok.text.as_str() {
            "counter_add"
            | "gauge_set"
            | "observe"
            | "observe_with_exemplar"
            | "register_histogram" => {
                let section = match tok.text.as_str() {
                    "counter_add" => "counters",
                    "gauge_set" => "gauges",
                    _ => "histograms",
                };
                let Some((name, nt)) = self.first_literal_arg(p) else {
                    return;
                };
                (section, normalize_metric(&name), nt)
            }
            "labeled" => {
                let Some((family, nt)) = self.first_literal_arg(p) else {
                    return;
                };
                let label = self.second_literal_arg(p);
                let name = match label {
                    Some(l) => format!("{family}{{{l}}}"),
                    None => family,
                };
                ("labeled", name, nt)
            }
            "span" | "instant" => {
                if !self.ct(p + 1).is_some_and(|t| t.is_punct('!')) {
                    return;
                }
                let Some((name, nt)) = self.first_string_in_call(p + 2) else {
                    return;
                };
                let section = if tok.text == "span" {
                    "spans"
                } else {
                    "events"
                };
                (section, name, nt)
            }
            _ => return,
        };
        if let Some(dump) = dump {
            dump.push(ObsName {
                section: if section == "labeled" {
                    "gauges"
                } else {
                    section
                },
                name,
            });
            return;
        }
        let declared = if section == "labeled" {
            // A `labeled()` family may be a gauge or a histogram.
            manifest.declares_metric(&name)
        } else {
            manifest.declares(section, &name)
        };
        if declared {
            return;
        }
        let where_ = match section {
            "labeled" => "any metric section of".to_string(),
            s => format!("[{s}] in"),
        };
        self.push(
            &name_tok,
            "O1",
            "metric",
            format!("observability name \"{name}\" is not declared in {where_} crates/lint/metrics.toml"),
            "a typo'd or undocumented name silently forks the registry; declare it in the \
             manifest and DESIGN.md \u{a7}8.5, or fix the spelling",
        );
    }

    /// `ident(` with args starting `[&] "literal"` → the literal.
    fn first_literal_arg(&self, p: usize) -> Option<(String, Tok)> {
        if !self.ct(p + 1)?.is_punct('(') {
            return None;
        }
        let mut q = p + 2;
        if self.ct(q)?.is_punct('&') {
            q += 1;
        }
        let t = self.ct(q)?;
        if t.kind == TokKind::Str {
            Some((t.text.clone(), t.clone()))
        } else {
            None
        }
    }

    /// Second argument of `ident(a, b, …)` when it is `[&] "literal"`.
    fn second_literal_arg(&self, p: usize) -> Option<String> {
        if !self.ct(p + 1)?.is_punct('(') {
            return None;
        }
        let mut depth = 1usize;
        let mut q = p + 2;
        while depth > 0 {
            let t = self.ct(q)?;
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if t.is_punct(',') && depth == 1 {
                let mut r = q + 1;
                if self.ct(r)?.is_punct('&') {
                    r += 1;
                }
                let t = self.ct(r)?;
                return if t.kind == TokKind::Str {
                    Some(t.text.clone())
                } else {
                    None
                };
            }
            q += 1;
        }
        None
    }

    /// First string literal inside a call whose `(` is at code-pos `open`.
    fn first_string_in_call(&self, open: usize) -> Option<(String, Tok)> {
        if !self.ct(open)?.is_punct('(') {
            return None;
        }
        let mut depth = 1usize;
        let mut q = open + 1;
        while depth > 0 {
            let t = self.ct(q)?;
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
            } else if t.kind == TokKind::Str {
                return Some((t.text.clone(), t.clone()));
            }
            q += 1;
        }
        None
    }

    // --- O2: env knob registry --------------------------------------------

    fn rule_o2(&mut self, p: usize, manifest: &Manifest, dump: Option<&mut Vec<ObsName>>) {
        let Some(tok) = self.ct(p).cloned() else {
            return;
        };
        if !is_env_knob(&tok.text) {
            return;
        }
        if let Some(dump) = dump {
            dump.push(ObsName {
                section: "env",
                name: tok.text.clone(),
            });
            return;
        }
        if manifest.declares("env", &tok.text) {
            return;
        }
        self.push(
            &tok,
            "O2",
            "env",
            format!(
                "environment knob \"{}\" is not declared in [env] of crates/lint/metrics.toml",
                tok.text
            ),
            "an undeclared knob is usually a typo (SKIPPER_OBS_ADR-class) and always \
             undocumented; declare it in the manifest and the README knob table",
        );
    }

    // --- S1: unsafe requires SAFETY ---------------------------------------

    fn rule_s1(&mut self, p: usize) {
        let Some(tok) = self.ct(p).cloned() else {
            return;
        };
        let line = tok.line;
        let documented = (line.saturating_sub(2)..=line)
            .any(|l| self.comments.get(&l).is_some_and(|c| c.contains("SAFETY:")));
        if documented {
            return;
        }
        self.push(
            &tok,
            "S1",
            "safety",
            "`unsafe` without a `// SAFETY:` comment".to_string(),
            "state the invariant that makes this sound in a `// SAFETY:` comment on or \
             directly above the unsafe block",
        );
    }

    // --- W1: stale waivers -------------------------------------------------

    /// Flag every `lint:allow(key)` with a *known* key that waived
    /// nothing. Runs after all other rules so `used_waivers` is complete.
    /// Keys that are not rule ids/categories are prose (docs quoting the
    /// syntax); `waiver`/`w1` keys are meta and never GC'd — flagging a
    /// waiver-of-a-waiver as stale in the same pass that makes it used
    /// would be order-dependent.
    fn rule_w1(&mut self) {
        let comment_toks: Vec<(usize, u32, u32, String)> = self
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_comment())
            .map(|(i, t)| (i, t.line, t.col, t.text.clone()))
            .collect();
        for (idx, line, col, text) in comment_toks {
            if self.in_test(idx) {
                continue; // Rules don't fire in tests; their waivers are decor.
            }
            let mut rest = text.as_str();
            while let Some(at) = rest.find("lint:allow(") {
                rest = &rest[at + "lint:allow(".len()..];
                let Some(close) = rest.find(')') else { break };
                let key = rest[..close].trim().to_ascii_lowercase();
                rest = &rest[close + 1..];
                if !WAIVER_KEYS.contains(&key.as_str()) || key == "w1" || key == "waiver" {
                    continue;
                }
                if self.used_waivers.contains(&(line, key.clone())) {
                    continue;
                }
                self.push_at(
                    line,
                    col,
                    "W1",
                    "waiver",
                    format!(
                        "stale waiver: `lint:allow({key})` matches no finding on this line \
                         or the line below"
                    ),
                    "either the rule no longer fires here or the waiver lacks its mandatory \
                     `: <reason>`; delete the comment (`skipper-lint --fix-waivers` does it \
                     mechanically) or repair the reason",
                );
            }
        }
    }
}

/// Full-literal match for `SKIPPER_[A-Z0-9_]+`.
fn is_env_knob(s: &str) -> bool {
    let Some(rest) = s.strip_prefix("SKIPPER_") else {
        return false;
    };
    !rest.is_empty()
        && rest
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// Normalize a literal metric key: `name{key=value}` → `name{key}`.
fn normalize_metric(name: &str) -> String {
    let Some(open) = name.find('{') else {
        return name.to_string();
    };
    let family = &name[..open];
    let inner = name[open..].trim_start_matches('{').trim_end_matches('}');
    let key = inner.split(',').next().unwrap_or("");
    let key = key.split('=').next().unwrap_or("").trim();
    format!("{family}{{{key}}}")
}
