//! `--explain <rule>` documentation, kept next to the code so the two
//! cannot drift apart silently.

/// Long-form documentation for one rule id (case-insensitive), or `None`
/// for an unknown id.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule.to_ascii_uppercase().as_str() {
        "D1" => D1,
        "D2" => D2,
        "P1" => P1,
        "O1" => O1,
        "O2" => O2,
        "S1" => S1,
        "C1" => C1,
        "C2" => C2,
        "W1" => W1,
        _ => return None,
    })
}

const D1: &str = "\
D1 · determinism — no nondeterminism sources in the numeric core

Scope: crates/core/src/{engine,checkpoint,sam,bptt,tbptt,lbp}.rs,
       crates/autograd/src/**, crates/snn/src/**  (non-test code)

Forbidden: HashMap / HashSet (iteration order varies per process),
Instant::now / SystemTime (wall-clock reads), thread_rng / from_entropy /
OsRng (unseeded RNG).

Why: Skipper's time-skipping is *stateful* approximation. The per-timestep
spike sum s_t feeds the SST percentile, and the percentile decides which
timesteps are recomputed versus skipped. Any nondeterminism upstream of
that decision does not average out — it changes the recompute schedule
itself, so two runs of the same seed diverge structurally, and the
engine's bitwise sharded-vs-unsharded contract (engine_determinism tests)
cannot hold. Deterministic alternatives: BTreeMap / BTreeSet / ordered
Vec; seeded StdRng plumbed from the session config; clock reads moved to
telemetry code outside the numeric core.

Waiver: // lint:allow(determinism): <reason>   (same line or line above)
Telemetry-only wall-clock reads inside the worker pool are the expected
waiver case; say so explicitly in the reason.
";

const D2: &str = "\
D2 · float-order — fixed-order float accumulation on the gradient path

Scope: same file set as D1 (non-test code).

Flagged: .sum::<f32|f64>(), .product::<f32|f64>(), .fold(<float seed>, …).

Why: float addition does not associate. The sharded engine guarantees
bitwise-identical losses, SAM spike sums, SST thresholds and gradients
across worker counts by reducing shard results through one fixed-order
pairwise tree (crates/core/src/engine.rs `tree_reduce`). A free-form
iterator reduction on the same path re-introduces an ordering degree of
freedom; it is only safe when the iteration order itself is fixed and
shard-local. If that is the case, say so in a waiver; if not, route the
accumulation through the tree reduction.

Waiver: // lint:allow(float-order): <why the order is fixed>
";

const P1: &str = "\
P1 · panic — library crates must not panic

Scope: crates/{core,obs,report,tensor,autograd,snn,data,memprof}/src/**
       excluding src/bin/ and #[cfg(test)] / #[test] code.

Flagged: .unwrap(), .expect(…), panic!, todo!, unimplemented!.

Why: library code runs on worker-pool threads and inside the
fault-tolerance path. A panic in a worker is caught and re-raised by the
pool (taking the whole training step down), and a panic during snapshot
restore turns a recoverable divergence into a crash. Recoverable errors
must flow as SkipperError / Result so sentinels and the resume machinery
can do their job. Binaries and tests may still panic: a CLI aborting on
bad input is fine, a library deciding to abort for the host process is
not.

Waiver: // lint:allow(panic): <why this cannot fail>
The reason must argue infallibility (e.g. \"index < len checked above\"),
not convenience.
";

const O1: &str = "\
O1 · metric — observability names must be declared in the manifest

Scope: all scanned files (non-test code).

Checked call shapes: counter_add(\"…\"), gauge_set(\"…\"), observe(\"…\"),
register_histogram(\"…\"), labeled(\"family\", \"label\", …), span!(\"…\"),
instant!(level, \"…\"). Labelled families are declared as family{label}.

Why: dashboards, the bench-gate manifests and DESIGN.md §8.5 all key on
literal metric names. A typo'd name (skipper.steps_skiped) silently forks
the registry: the dashboard flatlines while the code \"works\". The
committed manifest (crates/lint/metrics.toml) is the single source of
truth; adding a metric means adding it to the manifest and the DESIGN.md
§8.5 table in the same change, so docs, code and manifest agree at merge
time. Dynamic names (built at runtime) are not checked — keep them built
from declared labeled() families.

Fix: declare the name in the right section of crates/lint/metrics.toml,
or fix the spelling at the call site.
Waiver: // lint:allow(metric): <reason>   (rarely appropriate)
";

const O2: &str = "\
O2 · env — SKIPPER_* environment knobs must be declared in the manifest

Scope: all scanned files (non-test code).

Flagged: any string literal that IS a knob name (matches
SKIPPER_[A-Z0-9_]+ exactly), wherever it appears — env::var sites,
constants, bench harness defaults.

Why: knobs are read in 20+ binaries; a misspelled knob
(SKIPPER_OBS_ADR) reads as unset and silently disables the feature it
was meant to configure. Declaring knobs in [env] of
crates/lint/metrics.toml catches the typo at build time and keeps the
README knob table honest.

Fix: declare the knob in [env], or fix the spelling.
Waiver: // lint:allow(env): <reason>
";

const S1: &str = "\
S1 · safety — unsafe requires a SAFETY comment

Scope: all scanned files, including test code.

Flagged: the `unsafe` keyword without a comment containing `SAFETY:` on
the same line or within the two lines above.

Why: the workspace is currently 100% safe Rust; if unsafe ever enters
(SIMD kernels, mmap'd datasets), the invariant that makes it sound must
be stated where it can be reviewed and re-checked after every edit.

Fix: // SAFETY: <the invariant that makes this sound>
Waiver: // lint:allow(safety): <reason>   (prefer a real SAFETY comment)
";

const C1: &str = "\
C1 · lock-order — the global lock-order graph must be acyclic

Scope: all scanned files (non-test code), analyzed as one unit.

The interprocedural engine parses every fn, derives which Mutex/RwLock
each function may acquire (directly, or through calls — summaries are
propagated over the call graph to a fixpoint), and records an edge
A -> B whenever B is acquired while A is held. Lock identities are
crate.field names from the acquisition receiver (self.board.lock() in
crates/core → core.board); the named_lock(\"id\", &m) helper in
skipper-obs makes the identity explicit and shared with the runtime
lock witness. Any edge participating in a cycle — including A -> A
re-entry, which self-deadlocks on std::sync::Mutex — is flagged at its
acquisition or call site, with an example cycle in the message.

Why: the engine worker pool, TCP cluster, serving gateway, SLO thread
and sampling profiler all run concurrently over shared registries. Two
threads taking the same pair of locks in opposite orders deadlock
rarely, under load, in production — exactly where a stalled training
step or a frozen gateway is most expensive. An acyclic acquisition
order makes that class of hang impossible by construction.

Inspect: skipper-lint --dump-lock-graph   (DOT; red edges = cycles)
Fix: pick one global order and acquire in that order everywhere, or
narrow a guard's scope so the nesting disappears.
Waiver: // lint:allow(lock-order): <why both orders can never run
concurrently>
";

const C2: &str = "\
C2 · blocking — no lock held across a blocking call

Scope: all scanned files (non-test code), analyzed as one unit.

Flagged while any lock is held: channel recv/recv_timeout/send, condvar
wait/wait_timeout, socket accept/connect, I/O read/write with a buffer
argument, read_exact/write_all/read_to_end/flush/sync_all, sleep, park,
zero-arg join — directly, or through a call chain (the diagnostic names
the chain: `call to wait_on may block (wait_timeout) while holding
serve.queue`). RwLock .read()/.write() with no arguments are lock
acquisitions, not I/O, and feed C1 instead.

Why: a holder blocked on I/O starves every thread queued on that lock —
the profiler census, the metrics registry and the gateway queue are all
on hot paths — and deadlocks outright when the unblock itself needs the
lock (recv while holding the lock the sender needs). The fix is almost
always to move data out under the guard, drop it, then block.

Waiver: // lint:allow(blocking): <why the wait is bounded and the lock
must stay held — condvar protocols are the expected case>
";

const W1: &str = "\
W1 · waiver — every lint:allow must still waive a live finding

Scope: all scanned files (non-test code); runs after every other rule.

Flagged: a `// lint:allow(<key>)` comment whose key is a real rule id or
category but which waived nothing — the rule no longer fires on that
line (or the line below it), or the waiver is missing its mandatory
`: <reason>`. Keys that are not rule ids/categories are ignored (docs
may quote the syntax), and `lint:allow(waiver)` itself is never GC'd.

Why: waivers are per-site arguments (\"this cannot fail because …\");
when the code moves on, a stale waiver keeps making an argument about
code that no longer exists, and the next reader extends trust it never
earned. Dead waivers also mask typos: a misspelled key waives nothing
silently — W1 makes the silence loud.

Fix: delete the comment — `skipper-lint --fix-waivers` lists them,
`--fix-waivers --apply` edits files in place.
";
