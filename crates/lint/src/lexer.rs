//! A small Rust lexer that is exact about the three things the rule
//! engine cares about and deliberately loose about everything else:
//!
//! 1. **Comments** (line, nested block) are tokenized, not skipped —
//!    waivers (`// lint:allow(...)`) and `// SAFETY:` justifications live
//!    in them.
//! 2. **Strings** (cooked, raw `r#"…"#`, byte, byte-raw) are single
//!    tokens carrying their inner text, so `"call .unwrap() here"` never
//!    looks like a method call and metric-name literals can be read back.
//! 3. **Everything else** is identifiers, lifetimes, numbers and
//!    one-character punctuation with exact line/column positions.
//!
//! The lexer never fails: unterminated constructs extend to end of file,
//! which is the most useful behaviour for a diagnostic tool.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `unsafe`, `fn`, raw `r#type`).
    Ident,
    /// Lifetime such as `'a` (also labels like `'outer`).
    Lifetime,
    /// String literal of any flavour; `text` holds the *inner* content.
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (integers, floats, with suffixes).
    Num,
    /// Single punctuation character (`.`, `(`, `!`, `{`, …).
    Punct,
    /// `// …` comment; `text` holds the content after the slashes.
    LineComment,
    /// `/* … */` comment (nesting-aware); `text` holds the inner content.
    BlockComment,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Tok {
    /// True for a punctuation token equal to `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// True for an identifier token equal to `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True for comment tokens of either flavour.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Cursor<'a> {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            // Count code points, not bytes, so columns match editors.
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenize `src`. Never fails; see module docs for the guarantees.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor::new(src);
    let mut toks = Vec::new();
    while let Some(b) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek2() == Some(b'/') => {
                cur.bump();
                cur.bump();
                let start = cur.pos;
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                toks.push(tok(TokKind::LineComment, &cur, start, line, col));
            }
            b'/' if cur.peek2() == Some(b'*') => {
                cur.bump();
                cur.bump();
                let start = cur.pos;
                let mut depth = 1usize;
                let mut end = cur.pos;
                while let Some(c) = cur.peek() {
                    if c == b'/' && cur.peek2() == Some(b'*') {
                        depth += 1;
                        cur.bump();
                        cur.bump();
                    } else if c == b'*' && cur.peek2() == Some(b'/') {
                        depth -= 1;
                        end = cur.pos;
                        cur.bump();
                        cur.bump();
                        if depth == 0 {
                            break;
                        }
                    } else {
                        cur.bump();
                        end = cur.pos;
                    }
                }
                if depth > 0 {
                    end = cur.pos;
                }
                let text = String::from_utf8_lossy(&cur.src[start..end]).into_owned();
                toks.push(Tok {
                    kind: TokKind::BlockComment,
                    text,
                    line,
                    col,
                });
            }
            b'"' => {
                cur.bump();
                toks.push(cooked_string(&mut cur, line, col));
            }
            b'r' | b'b' => {
                if let Some(t) = raw_or_byte_prefix(&mut cur, line, col) {
                    toks.push(t);
                } else {
                    toks.push(ident(&mut cur, line, col));
                }
            }
            b'\'' => {
                toks.push(char_or_lifetime(&mut cur, line, col));
            }
            _ if is_ident_start(b) => {
                toks.push(ident(&mut cur, line, col));
            }
            _ if b.is_ascii_digit() => {
                toks.push(number(&mut cur, line, col));
            }
            _ => {
                cur.bump();
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line,
                    col,
                });
            }
        }
    }
    toks
}

fn tok(kind: TokKind, cur: &Cursor, start: usize, line: u32, col: u32) -> Tok {
    Tok {
        kind,
        text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
        line,
        col,
    }
}

/// Cooked string body; the opening quote is already consumed.
fn cooked_string(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let start = cur.pos;
    let mut end = cur.pos;
    while let Some(c) = cur.peek() {
        if c == b'\\' {
            cur.bump();
            cur.bump();
            end = cur.pos;
        } else if c == b'"' {
            end = cur.pos;
            cur.bump();
            break;
        } else {
            cur.bump();
            end = cur.pos;
        }
    }
    Tok {
        kind: TokKind::Str,
        text: String::from_utf8_lossy(&cur.src[start..end]).into_owned(),
        line,
        col,
    }
}

/// Handle tokens starting with `r` or `b`: raw strings `r"…"`/`r#"…"#`,
/// byte strings `b"…"`, byte-raw `br#"…"#`, byte chars `b'…'`, and raw
/// identifiers `r#ident`. Returns `None` when the prefix is actually a
/// plain identifier (`result`, `bound`, …).
fn raw_or_byte_prefix(cur: &mut Cursor, line: u32, col: u32) -> Option<Tok> {
    let first = cur.peek()?;
    let mut off = 1usize;
    if first == b'b' && cur.peek_at(off) == Some(b'r') {
        off += 1;
    }
    // Count '#' for raw strings.
    let mut hashes = 0usize;
    while cur.peek_at(off + hashes) == Some(b'#') {
        hashes += 1;
    }
    let is_raw = first == b'r' || (first == b'b' && off == 2);
    match cur.peek_at(off + hashes) {
        Some(b'"') if is_raw || (first == b'b' && hashes == 0) => {
            for _ in 0..off + hashes + 1 {
                cur.bump();
            }
            if is_raw {
                Some(raw_string_body(cur, hashes, line, col))
            } else {
                Some(cooked_string(cur, line, col))
            }
        }
        Some(b'\'') if first == b'b' && off == 1 && hashes == 0 => {
            cur.bump();
            cur.bump();
            Some(char_body(cur, line, col))
        }
        Some(c) if first == b'r' && hashes == 1 && is_ident_start(c) => {
            // Raw identifier `r#type`: keep the `r#` in the token text so
            // keyword-matching rules (S1 on `unsafe`) never fire on an
            // identifier that merely *names* a keyword.
            cur.bump();
            cur.bump();
            let mut t = ident(cur, line, col);
            t.text.insert_str(0, "r#");
            Some(t)
        }
        _ => None,
    }
}

/// Raw string body after the opening quote; terminated by `"` + `hashes`
/// trailing `#` characters.
fn raw_string_body(cur: &mut Cursor, hashes: usize, line: u32, col: u32) -> Tok {
    let start = cur.pos;
    let mut end = cur.pos;
    while let Some(c) = cur.peek() {
        if c == b'"' {
            let mut ok = true;
            for i in 0..hashes {
                if cur.peek_at(1 + i) != Some(b'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                end = cur.pos;
                for _ in 0..1 + hashes {
                    cur.bump();
                }
                break;
            }
        }
        cur.bump();
        end = cur.pos;
    }
    Tok {
        kind: TokKind::Str,
        text: String::from_utf8_lossy(&cur.src[start..end]).into_owned(),
        line,
        col,
    }
}

/// `'` already consumed: decide between a char literal and a lifetime.
fn char_or_lifetime(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    cur.bump(); // the quote
    match cur.peek() {
        Some(c) if is_ident_start(c) && !c.is_ascii_digit() => {
            // `'a'` is a char; `'a` followed by anything but `'` is a
            // lifetime (or loop label).
            let mut len = 0usize;
            while let Some(n) = cur.peek_at(len) {
                if is_ident_continue(n) {
                    len += 1;
                } else {
                    break;
                }
            }
            if len == 1 && cur.peek_at(1) == Some(b'\'') {
                char_body(cur, line, col)
            } else {
                let start = cur.pos;
                for _ in 0..len {
                    cur.bump();
                }
                tok(TokKind::Lifetime, cur, start, line, col)
            }
        }
        _ => char_body(cur, line, col),
    }
}

/// Char literal body (after the opening quote), escape-aware.
fn char_body(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let start = cur.pos;
    let mut end = cur.pos;
    while let Some(c) = cur.peek() {
        if c == b'\\' {
            cur.bump();
            cur.bump();
            end = cur.pos;
        } else if c == b'\'' {
            end = cur.pos;
            cur.bump();
            break;
        } else if c == b'\n' {
            break; // Unterminated; don't eat the rest of the file.
        } else {
            cur.bump();
            end = cur.pos;
        }
    }
    Tok {
        kind: TokKind::Char,
        text: String::from_utf8_lossy(&cur.src[start..end]).into_owned(),
        line,
        col,
    }
}

fn ident(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let start = cur.pos;
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            cur.bump();
        } else {
            break;
        }
    }
    tok(TokKind::Ident, cur, start, line, col)
}

fn number(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let start = cur.pos;
    while let Some(c) = cur.peek() {
        if c.is_ascii_alphanumeric() || c == b'_' {
            let at_exp = matches!(c, b'e' | b'E')
                && matches!(cur.peek2(), Some(b'+') | Some(b'-'))
                && cur.src[start..cur.pos].contains(&b'.');
            cur.bump();
            if at_exp {
                cur.bump();
            }
        } else if c == b'.' {
            // `1.0` continues the number; `1.fold(…)` and `1..n` do not.
            match cur.peek2() {
                Some(d) if d.is_ascii_digit() => {
                    cur.bump();
                }
                _ => break,
            }
        } else {
            break;
        }
    }
    tok(TokKind::Num, cur, start, line, col)
}

/// Token index ranges covered by `#[cfg(test)]` / `#[test]` items.
///
/// The scan finds each such attribute, skips any further attributes, and
/// covers tokens through the end of the annotated item: the matching `}`
/// of its first body brace, or a terminating `;` for braceless items.
pub fn test_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if let Some((attr_end, is_test)) = parse_attr(toks, i) {
            if is_test {
                let end = item_end(toks, attr_end + 1);
                regions.push((i, end));
                i = end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    regions
}

/// If `toks[i]` starts an attribute `#[…]`, return the index of the
/// closing `]` and whether the attribute marks test-only code
/// (`#[test]`, or any `cfg`/`cfg_attr` attribute mentioning `test`).
fn parse_attr(toks: &[Tok], i: usize) -> Option<(usize, bool)> {
    if !toks[i].is_punct('#') {
        return None;
    }
    let mut j = i + 1;
    while j < toks.len() && toks[j].is_comment() {
        j += 1;
    }
    if j >= toks.len() || !toks[j].is_punct('[') {
        return None;
    }
    let mut depth = 1usize;
    let mut mentions_test = false;
    let mut has_cfg = false;
    let mut first_ident: Option<&str> = None;
    let mut k = j + 1;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokKind::Ident {
            if first_ident.is_none() {
                first_ident = Some(t.text.as_str());
            }
            if t.text == "cfg" || t.text == "cfg_attr" {
                has_cfg = true;
            }
            if t.text == "test" {
                mentions_test = true;
            }
        }
        k += 1;
    }
    if k >= toks.len() {
        return None;
    }
    let is_test_attr = match first_ident {
        Some("test") => true,
        _ => has_cfg && mentions_test,
    };
    Some((k, is_test_attr))
}

/// End index (inclusive) of the item starting after an attribute: skips
/// leading attributes/comments, then runs to the matching close of the
/// first `{` at depth zero, or to a `;` before any `{`.
fn item_end(toks: &[Tok], mut i: usize) -> usize {
    // Skip stacked attributes (`#[cfg(test)] #[allow(…)] mod t { … }`).
    while i < toks.len() {
        if toks[i].is_comment() {
            i += 1;
        } else if let Some((attr_end, _)) = parse_attr(toks, i) {
            i = attr_end + 1;
        } else {
            break;
        }
    }
    let mut depth = 0usize;
    let mut j = i;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j;
            }
        } else if t.is_punct(';') && depth == 0 {
            return j;
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}
