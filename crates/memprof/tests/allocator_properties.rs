//! Property tests of the caching-allocator model: invariants that hold for
//! any interleaving of allocations and frees.

use proptest::prelude::*;
use skipper_memprof::alloc_model::round_size;
use skipper_memprof::tracker::AllocEvent;
use skipper_memprof::{CachingAllocator, Category};

/// Turn a script of sizes into a well-formed alloc/free event stream:
/// every allocation is freed in a random (index-scrambled) order unless
/// `leak` keeps it alive.
fn event_stream(sizes: &[u32], free_order: &[usize], leaked: usize) -> Vec<AllocEvent> {
    let mut events: Vec<AllocEvent> = sizes
        .iter()
        .enumerate()
        .map(|(id, &bytes)| AllocEvent {
            id: id as u64,
            bytes: bytes as u64,
            is_alloc: true,
            category: Category::Other,
        })
        .collect();
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    let len = order.len();
    for (i, &swap) in free_order.iter().enumerate() {
        if i < len {
            order.swap(i, swap % len);
        }
    }
    for &id in order.iter().skip(leaked) {
        events.push(AllocEvent {
            id: id as u64,
            bytes: sizes[id] as u64,
            is_alloc: false,
            category: Category::Other,
        });
    }
    events
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// reserved ≥ peak_allocated ≥ live, and rounding is monotone.
    #[test]
    fn allocator_invariants(
        sizes in prop::collection::vec(1u32..4_000_000, 1..40),
        free_order in prop::collection::vec(0usize..40, 0..40),
        leaked in 0usize..5,
    ) {
        let events = event_stream(&sizes, &free_order, leaked.min(sizes.len()));
        let stats = CachingAllocator::replay(&events);
        prop_assert!(stats.reserved >= stats.peak_allocated);
        prop_assert!(stats.peak_allocated >= stats.live_allocated);
        // Peak covers at least the largest single rounded request.
        let biggest = sizes.iter().map(|&s| round_size(s as u64)).max().unwrap();
        prop_assert!(stats.peak_allocated >= biggest);
        // Hits + misses = allocations.
        prop_assert_eq!(stats.cache_hits + stats.cache_misses, sizes.len() as u64);
    }

    /// Sequential (alloc, free) pairs of one size never grow the
    /// reservation beyond the first block: the cache must always hit.
    #[test]
    fn repeated_same_size_is_fully_cached(size in 1u32..2_000_000, repeats in 1usize..20) {
        let mut events = Vec::new();
        for id in 0..repeats as u64 {
            events.push(AllocEvent { id, bytes: size as u64, is_alloc: true, category: Category::Other });
            events.push(AllocEvent { id, bytes: size as u64, is_alloc: false, category: Category::Other });
        }
        let stats = CachingAllocator::replay(&events);
        prop_assert_eq!(stats.reserved, round_size(size as u64));
        prop_assert_eq!(stats.cache_misses, 1);
    }

    /// Rounding is monotone, idempotent and never shrinks.
    #[test]
    fn rounding_laws(a in 0u64..100_000_000, b in 0u64..100_000_000) {
        prop_assert!(round_size(a) >= a);
        prop_assert_eq!(round_size(round_size(a)), round_size(a));
        if a <= b {
            prop_assert!(round_size(a) <= round_size(b));
        }
    }
}
