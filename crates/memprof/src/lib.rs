//! Device-memory accounting and hardware cost models.
//!
//! The Skipper paper ([Singh et al., MICRO 2022]) measures three system-level
//! quantities while training spiking neural networks on NVIDIA GPUs:
//!
//! 1. **peak tensor memory by category** (activations / input / weights /
//!    weight gradients / optimizer state / other) via PyTorch's
//!    `max_memory_allocated()`,
//! 2. **overall device memory** (tensors + framework cache + CUDA context)
//!    via `nvidia-smi` / `pynvml`,
//! 3. **training wall time** on the device.
//!
//! This crate is the Rust substrate that stands in for that measurement
//! stack. It provides:
//!
//! * [`tracker`] — byte-exact live/peak accounting of every tensor
//!   allocation in the process, tagged with a [`Category`] taken from a
//!   scoped guard (the analogue of `max_memory_allocated`, but by category);
//! * [`alloc_model`] — an event-driven model of a PyTorch-style caching
//!   allocator (512 B rounding, block reuse, high-watermark "reserved"
//!   bytes), the analogue of `max_memory_reserved`;
//! * [`device`] — device presets (A100-80GB, Jetson Nano, …) holding the
//!   CUDA-context constant, memory capacity and compute/bandwidth figures;
//! * [`latency`] — an analytic GPU latency model (`launch overhead +
//!   max(flops/peak, bytes/bandwidth)` per op) fed by an op log that the
//!   tensor kernels populate, which reproduces the batch-size amortisation
//!   behaviour of the paper's Figs. 3(e,f), 10 and 11;
//! * [`parallel`] — a small data-parallel cost model for the 4-GPU
//!   experiment of Fig. 4(b).
//!
//! Everything here is deterministic and pure-CPU; see `DESIGN.md` at the
//! repository root for the substitution argument.
//!
//! # Example
//!
//! ```
//! use skipper_memprof::{Category, CategoryGuard, Registration, snapshot, reset_peaks};
//!
//! reset_peaks();
//! let _weights = {
//!     let _g = CategoryGuard::new(Category::Weights);
//!     Registration::new(1024) // a tensor of 1 KiB is born under Weights
//! };
//! let snap = snapshot();
//! assert_eq!(snap.live(Category::Weights), 1024);
//! assert_eq!(snap.peak(Category::Weights), 1024);
//! ```
//!
//! [Singh et al., MICRO 2022]: https://doi.org/10.1109/MICRO56248.2022.00047

pub mod alloc_model;
pub mod category;
pub mod device;
pub mod latency;
pub mod parallel;
pub mod timeline;
pub mod tracker;

pub use alloc_model::{AllocStats, CachingAllocator};
pub use category::Category;
pub use device::DeviceModel;
pub use latency::{record_op, set_op_logging, take_op_log, LatencyModel, OpKind, OpLog, OpRecord};
pub use parallel::{DataParallelModel, ParallelStepCost};
pub use timeline::{downsample, sparkline, timeline_from_events, TimelinePoint};
pub use tracker::{
    current_category, enable_event_log, inject_pressure, injected_pressure, publish_peaks,
    release_pressure, reset_all, reset_peaks, snapshot, take_events, AllocEvent, CategoryGuard,
    MemorySnapshot, Registration,
};
