//! Data-parallel training cost model (paper Fig. 4(b)).
//!
//! The paper trains ResNet34 on ImageNet in a data-parallel regime on four
//! A100s and reports per-GPU memory and time-to-train against batch size.
//! This module models that setting: each device holds the full parameter /
//! optimizer state plus the activations of its batch shard, computes its
//! shard independently, and synchronises gradients with a ring all-reduce
//! (`2·(n−1)/n · param_bytes` traffic per device per step).

use crate::device::DeviceModel;
use serde::{Deserialize, Serialize};

/// A homogeneous group of `n` devices connected by `interconnect_bw`
/// (bytes/s per link, e.g. NVLink ≈ 300 GB/s effective).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataParallelModel {
    /// Per-device model.
    pub device: DeviceModel,
    /// Number of devices.
    pub n_devices: usize,
    /// Effective per-device interconnect bandwidth, bytes/s.
    pub interconnect_bw: f64,
}

/// Cost of one data-parallel training step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParallelStepCost {
    /// Modeled compute time of the shard on one device, seconds.
    pub compute_s: f64,
    /// Modeled all-reduce time, seconds.
    pub allreduce_s: f64,
    /// Per-device memory: parameters + optimizer + shard activations, bytes.
    pub per_device_bytes: u64,
}

impl ParallelStepCost {
    /// Total step time (compute and communication serialized; a conservative
    /// non-overlapping schedule).
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.allreduce_s
    }
}

impl DataParallelModel {
    /// Four A100s over NVLink, the paper's Fig. 4(b) configuration.
    pub fn four_a100() -> DataParallelModel {
        DataParallelModel {
            device: DeviceModel::a100_80gb(),
            n_devices: 4,
            interconnect_bw: 300e9,
        }
    }

    /// Model one optimizer step.
    ///
    /// * `shard_compute_s` — modeled single-device time for the local batch
    ///   shard (from [`LatencyModel`](crate::latency::LatencyModel));
    /// * `param_bytes` — size of the gradient buffer to all-reduce;
    /// * `resident_bytes` — parameters + optimizer + persistent buffers;
    /// * `shard_activation_bytes` — peak activations for the local shard.
    pub fn step(
        &self,
        shard_compute_s: f64,
        param_bytes: u64,
        resident_bytes: u64,
        shard_activation_bytes: u64,
    ) -> ParallelStepCost {
        let n = self.n_devices.max(1) as f64;
        let allreduce_bytes = 2.0 * (n - 1.0) / n * param_bytes as f64;
        ParallelStepCost {
            compute_s: shard_compute_s,
            allreduce_s: allreduce_bytes / self.interconnect_bw,
            per_device_bytes: resident_bytes + shard_activation_bytes,
        }
    }

    /// Whether the per-device footprint fits each device.
    pub fn fits(&self, cost: &ParallelStepCost) -> bool {
        self.device.fits(cost.per_device_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_scales_with_params_not_devices_much() {
        let m = DataParallelModel::four_a100();
        let a = m.step(1.0, 100 << 20, 1 << 30, 1 << 30);
        let b = m.step(1.0, 200 << 20, 1 << 30, 1 << 30);
        assert!(b.allreduce_s > 1.9 * a.allreduce_s);
    }

    #[test]
    fn single_device_has_no_allreduce() {
        let mut m = DataParallelModel::four_a100();
        m.n_devices = 1;
        let c = m.step(1.0, 100 << 20, 0, 0);
        assert_eq!(c.allreduce_s, 0.0);
        assert!((c.total_s() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn memory_fit_respects_capacity() {
        let m = DataParallelModel::four_a100();
        let ok = m.step(1.0, 1 << 20, 10 << 30, 10 << 30);
        assert!(m.fits(&ok));
        let too_big = m.step(1.0, 1 << 20, 50 << 30, 40 << 30);
        assert!(!m.fits(&too_big));
    }
}
