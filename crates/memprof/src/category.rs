//! Tensor-memory categories matching the breakdowns of Figs. 3(c,d) and 4(a)
//! of the paper.

use serde::{Deserialize, Serialize};

/// The role a tensor plays during training.
///
/// The paper's motivation figures (Figs. 3(c,d), 4(a)) break device tensor
/// memory down into *input*, *model (weights)*, *activations*, *optimizer*
/// (weight gradients + gradient moments + non-trainable parameters) and
/// *others*. We keep weight gradients separate from the optimizer moments so
/// that both the paper's coarse grouping and a finer one can be reported.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub enum Category {
    /// Time-dependent neural state: membrane potentials, spikes, synaptic
    /// currents and everything else saved for the backward pass.
    Activations,
    /// The (spike-encoded) network input sequence and labels.
    Input,
    /// Trainable parameters.
    Weights,
    /// Gradients of the trainable parameters.
    WeightGrads,
    /// Optimizer state (Adam moments, momentum buffers, …).
    OptimizerState,
    /// Short-lived kernel workspaces (im2col buffers and the like).
    Workspace,
    /// Anything not covered above.
    #[default]
    Other,
}

impl Category {
    /// Number of distinct categories.
    pub const COUNT: usize = 7;

    /// All categories, in a fixed display order.
    pub const ALL: [Category; Category::COUNT] = [
        Category::Activations,
        Category::Input,
        Category::Weights,
        Category::WeightGrads,
        Category::OptimizerState,
        Category::Workspace,
        Category::Other,
    ];

    /// Dense index used by the tracker's per-category arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Category::Activations => 0,
            Category::Input => 1,
            Category::Weights => 2,
            Category::WeightGrads => 3,
            Category::OptimizerState => 4,
            Category::Workspace => 5,
            Category::Other => 6,
        }
    }

    /// Short label used in figure/table output.
    pub fn label(self) -> &'static str {
        match self {
            Category::Activations => "activations",
            Category::Input => "input",
            Category::Weights => "weights",
            Category::WeightGrads => "wt gradients",
            Category::OptimizerState => "optimizer",
            Category::Workspace => "workspace",
            Category::Other => "others",
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; Category::COUNT];
        for c in Category::ALL {
            let i = c.index();
            assert!(i < Category::COUNT);
            assert!(!seen[i], "duplicate index for {c:?}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn labels_are_nonempty_and_distinct() {
        let mut labels: Vec<_> = Category::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Category::COUNT);
        assert!(labels.iter().all(|l| !l.is_empty()));
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(Category::Activations.to_string(), "activations");
    }
}
