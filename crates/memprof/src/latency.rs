//! Op logging and the analytic GPU latency model.
//!
//! Tensor kernels call [`record_op`] with their FLOP and byte-traffic
//! counts. A trainer drains the log per phase ([`take_op_log`]) and the
//! [`LatencyModel`] converts it into a modeled device time using the
//! roofline of [`DeviceModel::kernel_time_s`]. Because every kernel pays a
//! fixed launch overhead, small batches are overhead-dominated and large
//! batches compute-dominated — exactly the behaviour behind the paper's
//! batch-size sweeps (Figs. 3(e,f), 10, 11).

use crate::device::DeviceModel;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Coarse kind of a compute kernel, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Dense matrix multiplication.
    MatMul,
    /// 2-D convolution (forward or backward).
    Conv,
    /// Elementwise arithmetic, thresholding, surrogate gradients.
    Elementwise,
    /// Pooling.
    Pool,
    /// Reductions (sums, losses).
    Reduce,
    /// Memory movement without arithmetic.
    Copy,
    /// Optimizer update kernels.
    Optimizer,
    /// Anything else.
    Other,
}

/// One logged kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpRecord {
    /// Kernel kind.
    pub kind: OpKind,
    /// Floating-point operations performed.
    pub flops: f64,
    /// Bytes read + written.
    pub bytes: f64,
}

/// A drained sequence of kernel records.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OpLog {
    records: Vec<OpRecord>,
}

impl OpLog {
    /// Log containing no ops.
    pub fn new() -> OpLog {
        OpLog::default()
    }

    /// Number of kernels logged.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no kernels were logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total floating point operations.
    pub fn total_flops(&self) -> f64 {
        self.records.iter().map(|r| r.flops).sum()
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> f64 {
        self.records.iter().map(|r| r.bytes).sum()
    }

    /// Iterate over the records.
    pub fn iter(&self) -> impl Iterator<Item = &OpRecord> {
        self.records.iter()
    }

    /// Append another log.
    pub fn extend(&mut self, other: OpLog) {
        self.records.extend(other.records);
    }

    /// Append a single record.
    pub fn push(&mut self, record: OpRecord) {
        self.records.push(record);
    }
}

impl FromIterator<OpRecord> for OpLog {
    fn from_iter<I: IntoIterator<Item = OpRecord>>(iter: I) -> Self {
        OpLog {
            records: iter.into_iter().collect(),
        }
    }
}

thread_local! {
    static OP_LOG: RefCell<OpLog> = RefCell::new(OpLog::new());
    static LOGGING: RefCell<bool> = const { RefCell::new(true) };
}

/// Record one kernel invocation on the calling thread's log.
#[inline]
pub fn record_op(kind: OpKind, flops: f64, bytes: f64) {
    let on = LOGGING.with(|l| *l.borrow());
    if !on {
        return;
    }
    OP_LOG.with(|log| log.borrow_mut().push(OpRecord { kind, flops, bytes }));
}

/// Drain and return the calling thread's op log.
pub fn take_op_log() -> OpLog {
    OP_LOG.with(|log| std::mem::take(&mut *log.borrow_mut()))
}

/// Enable or disable op logging on this thread (on by default). Returns the
/// previous setting. Disable inside hot inner loops that would otherwise log
/// millions of identical elementwise records.
pub fn set_op_logging(enabled: bool) -> bool {
    LOGGING.with(|l| std::mem::replace(&mut *l.borrow_mut(), enabled))
}

/// Converts op logs into modeled device time.
#[derive(Debug, Clone, Default)]
pub struct LatencyModel {
    device: DeviceModel,
}

impl LatencyModel {
    /// Model running on `device`.
    pub fn new(device: DeviceModel) -> LatencyModel {
        LatencyModel { device }
    }

    /// The device being modeled.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// Modeled execution time of `log` in seconds (kernels serialized, as on
    /// a single CUDA stream).
    pub fn time_s(&self, log: &OpLog) -> f64 {
        log.iter()
            .map(|r| self.device.kernel_time_s(r.flops, r.bytes))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_drain() {
        take_op_log();
        record_op(OpKind::MatMul, 100.0, 10.0);
        record_op(OpKind::Elementwise, 1.0, 8.0);
        let log = take_op_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log.total_flops(), 101.0);
        assert!(take_op_log().is_empty());
    }

    #[test]
    fn logging_can_be_paused() {
        take_op_log();
        let prev = set_op_logging(false);
        record_op(OpKind::Other, 5.0, 5.0);
        set_op_logging(prev);
        assert!(take_op_log().is_empty());
    }

    #[test]
    fn model_time_sums_kernels() {
        let model = LatencyModel::new(DeviceModel::a100_80gb());
        let log: OpLog = vec![
            OpRecord {
                kind: OpKind::MatMul,
                flops: 1e12,
                bytes: 1e6,
            };
            2
        ]
        .into_iter()
        .collect();
        let t = model.time_s(&log);
        let single = model.device().kernel_time_s(1e12, 1e6);
        assert!((t - 2.0 * single).abs() < 1e-12);
    }

    #[test]
    fn more_kernels_cost_more_overhead() {
        let model = LatencyModel::new(DeviceModel::a100_80gb());
        let work = OpRecord {
            kind: OpKind::Elementwise,
            flops: 1.0,
            bytes: 1.0,
        };
        let few: OpLog = std::iter::repeat_n(work, 10).collect();
        let many: OpLog = std::iter::repeat_n(work, 1000).collect();
        assert!(model.time_s(&many) > 50.0 * model.time_s(&few));
    }
}
