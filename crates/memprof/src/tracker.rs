//! Thread-local, byte-exact accounting of live and peak tensor memory.
//!
//! Every tensor storage in the workspace owns a [`Registration`]; creating
//! the registration adds the storage's bytes to the current thread's
//! tracker under the *current category* (see [`CategoryGuard`]), dropping it
//! subtracts them again. Peaks are maintained per category **and** for the
//! total, because the paper reports both per-category breakdowns
//! (Figs. 3(c,d), 4(a)) and overall peaks (Figs. 7, 12, 14).
//!
//! The tracker is thread-local so that parallel tests do not interfere; the
//! training code in this workspace allocates and drops tensors on a single
//! thread per run (compute kernels use scoped threads but never allocate
//! tracked storage), which keeps the books consistent.

use crate::category::Category;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// One allocation or deallocation, as consumed by
/// [`CachingAllocator`](crate::alloc_model::CachingAllocator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocEvent {
    /// Monotonically increasing id of the allocation this event belongs to.
    pub id: u64,
    /// Size of the allocation in bytes (un-rounded).
    pub bytes: u64,
    /// `true` for allocation, `false` for free.
    pub is_alloc: bool,
    /// Category active when the allocation was made.
    pub category: Category,
}

#[derive(Debug, Default)]
struct TrackerState {
    live: [u64; Category::COUNT],
    peak: [u64; Category::COUNT],
    total_live: u64,
    total_peak: u64,
    current: Category,
    next_id: u64,
    events: Option<Vec<AllocEvent>>,
}

thread_local! {
    static TRACKER: RefCell<TrackerState> = RefCell::new(TrackerState::default());
}

/// Ticket held by a tensor storage for the duration of its life.
///
/// Creating a `Registration` books `bytes` under the current thread's
/// current [`Category`]; dropping it releases them. The registration must be
/// dropped on the thread that created it (guaranteed within this workspace,
/// where tracked storages never cross threads).
#[derive(Debug)]
pub struct Registration {
    bytes: u64,
    category: Category,
    id: u64,
}

impl Registration {
    /// Book `bytes` under the current category of the calling thread.
    pub fn new(bytes: u64) -> Registration {
        Self::with_category(bytes, current_category())
    }

    /// Book `bytes` under an explicit category, ignoring the scoped one.
    pub fn with_category(bytes: u64, category: Category) -> Registration {
        let id = TRACKER.with(|t| {
            let mut t = t.borrow_mut();
            let id = t.next_id;
            t.next_id += 1;
            let i = category.index();
            t.live[i] += bytes;
            t.peak[i] = t.peak[i].max(t.live[i]);
            t.total_live += bytes;
            t.total_peak = t.total_peak.max(t.total_live);
            if let Some(events) = t.events.as_mut() {
                events.push(AllocEvent {
                    id,
                    bytes,
                    is_alloc: true,
                    category,
                });
            }
            id
        });
        Registration {
            bytes,
            category,
            id,
        }
    }

    /// Size booked by this registration, in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Category the bytes were booked under.
    pub fn category(&self) -> Category {
        self.category
    }
}

impl Drop for Registration {
    fn drop(&mut self) {
        TRACKER.with(|t| {
            let mut t = t.borrow_mut();
            let i = self.category.index();
            t.live[i] = t.live[i].saturating_sub(self.bytes);
            t.total_live = t.total_live.saturating_sub(self.bytes);
            if let Some(events) = t.events.as_mut() {
                events.push(AllocEvent {
                    id: self.id,
                    bytes: self.bytes,
                    is_alloc: false,
                    category: self.category,
                });
            }
        });
    }
}

/// Scoped override of the category new registrations are booked under.
///
/// Guards nest; dropping restores the previous category.
///
/// ```
/// use skipper_memprof::{Category, CategoryGuard, current_category};
/// assert_eq!(current_category(), Category::Other);
/// {
///     let _g = CategoryGuard::new(Category::Activations);
///     assert_eq!(current_category(), Category::Activations);
/// }
/// assert_eq!(current_category(), Category::Other);
/// ```
#[derive(Debug)]
pub struct CategoryGuard {
    previous: Category,
}

impl CategoryGuard {
    /// Make `category` the current one until the guard is dropped.
    pub fn new(category: Category) -> CategoryGuard {
        let previous = TRACKER.with(|t| {
            let mut t = t.borrow_mut();
            std::mem::replace(&mut t.current, category)
        });
        CategoryGuard { previous }
    }
}

impl Drop for CategoryGuard {
    fn drop(&mut self) {
        TRACKER.with(|t| t.borrow_mut().current = self.previous);
    }
}

/// The category new registrations on this thread are currently booked under.
pub fn current_category() -> Category {
    TRACKER.with(|t| t.borrow().current)
}

/// Immutable view of the tracker's live and peak counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemorySnapshot {
    live: [u64; Category::COUNT],
    peak: [u64; Category::COUNT],
    total_live: u64,
    total_peak: u64,
}

impl MemorySnapshot {
    /// Live bytes currently booked under `category`.
    pub fn live(&self, category: Category) -> u64 {
        self.live[category.index()]
    }

    /// Peak bytes ever booked under `category` since the last
    /// [`reset_peaks`].
    pub fn peak(&self, category: Category) -> u64 {
        self.peak[category.index()]
    }

    /// Sum of live bytes across all categories.
    pub fn total_live(&self) -> u64 {
        self.total_live
    }

    /// Peak of the *total* (which is ≤ the sum of per-category peaks,
    /// because categories usually do not peak simultaneously).
    pub fn total_peak(&self) -> u64 {
        self.total_peak
    }

    /// Sum of per-category peaks; an upper bound on [`total_peak`].
    ///
    /// [`total_peak`]: MemorySnapshot::total_peak
    pub fn sum_of_peaks(&self) -> u64 {
        self.peak.iter().sum()
    }

    /// `(category, peak bytes)` pairs in display order.
    pub fn peaks(&self) -> impl Iterator<Item = (Category, u64)> + '_ {
        Category::ALL.iter().map(move |&c| (c, self.peak(c)))
    }

    /// Elementwise maximum of two snapshots.
    ///
    /// The tracker is thread-local, so a data-parallel iteration produces
    /// one snapshot per worker; merging with `max` models the device view
    /// where the workers are lanes of one accelerator and the iteration's
    /// footprint is bounded by the hungriest lane per category.
    pub fn merge_max(&self, other: &MemorySnapshot) -> MemorySnapshot {
        let mut out = *self;
        for i in 0..Category::COUNT {
            out.live[i] = out.live[i].max(other.live[i]);
            out.peak[i] = out.peak[i].max(other.peak[i]);
        }
        out.total_live = out.total_live.max(other.total_live);
        out.total_peak = out.total_peak.max(other.total_peak);
        out
    }
}

impl std::fmt::Display for MemorySnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "peak {} B [", self.total_peak)?;
        for (i, (c, p)) in self.peaks().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}: {p}")?;
        }
        write!(f, "]")
    }
}

/// Snapshot the calling thread's tracker.
pub fn snapshot() -> MemorySnapshot {
    TRACKER.with(|t| {
        let t = t.borrow();
        MemorySnapshot {
            live: t.live,
            peak: t.peak,
            total_live: t.total_live,
            total_peak: t.total_peak,
        }
    })
}

/// Publish `snapshot`'s per-category and total peaks as observability
/// gauges (`memprof.peak_bytes{category=...}` and
/// `memprof.peak_bytes{category=total}`).
///
/// The bridge between the byte-exact tracker and `skipper-obs`: callers
/// that already snapshot per iteration (e.g. the training runner) invoke
/// it so Perfetto traces grow counter tracks aligned with the span
/// timeline. No-op while tracing is disabled.
pub fn publish_peaks(snapshot: &MemorySnapshot) {
    if !skipper_obs::enabled() {
        return;
    }
    for (category, peak) in snapshot.peaks() {
        skipper_obs::gauge_set(
            &skipper_obs::labeled("memprof.peak_bytes", "category", category),
            peak as f64,
        );
    }
    skipper_obs::gauge_set(
        &skipper_obs::labeled("memprof.peak_bytes", "category", "total"),
        snapshot.total_peak() as f64,
    );
}

/// Reset every peak to the current live value (start of a new measurement
/// window, e.g. a training iteration).
pub fn reset_peaks() {
    TRACKER.with(|t| {
        let mut t = t.borrow_mut();
        t.peak = t.live;
        t.total_peak = t.total_live;
    });
}

/// Zero all counters, drop the event log, and reset the category.
///
/// Intended for test isolation only: live registrations created before the
/// reset will under-flow-saturate to zero on drop, so callers must ensure no
/// tracked storage is alive.
pub fn reset_all() {
    TRACKER.with(|t| *t.borrow_mut() = TrackerState::default());
}

thread_local! {
    static PRESSURE: RefCell<Vec<Registration>> = const { RefCell::new(Vec::new()) };
}

/// Book `bytes` of synthetic allocation pressure under `category` until
/// [`release_pressure`] is called.
///
/// This is the deterministic fault-injection hook used to exercise
/// memory-budget handling: the bytes count toward live and peak exactly
/// like real tensor storage, so budget governors and tests can provoke
/// "out of budget" conditions at a chosen iteration without allocating.
pub fn inject_pressure(bytes: u64, category: Category) {
    let registration = Registration::with_category(bytes, category);
    PRESSURE.with(|p| p.borrow_mut().push(registration));
}

/// Release every synthetic registration created by [`inject_pressure`] on
/// this thread, returning how many bytes were released.
pub fn release_pressure() -> u64 {
    PRESSURE.with(|p| {
        let drained = std::mem::take(&mut *p.borrow_mut());
        drained.iter().map(Registration::bytes).sum()
    })
}

/// Bytes of synthetic pressure currently injected on this thread.
pub fn injected_pressure() -> u64 {
    PRESSURE.with(|p| p.borrow().iter().map(Registration::bytes).sum())
}

/// Start recording allocation events for the caching-allocator model.
///
/// Recording stays on until [`take_events`] is called.
pub fn enable_event_log() {
    TRACKER.with(|t| {
        let mut t = t.borrow_mut();
        if t.events.is_none() {
            t.events = Some(Vec::new());
        }
    });
}

/// Stop recording and return the events captured since
/// [`enable_event_log`].
pub fn take_events() -> Vec<AllocEvent> {
    TRACKER.with(|t| t.borrow_mut().events.take().unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_and_peak_track_alloc_and_drop() {
        reset_all();
        let a = Registration::with_category(100, Category::Weights);
        {
            let _b = Registration::with_category(50, Category::Weights);
            assert_eq!(snapshot().live(Category::Weights), 150);
        }
        let s = snapshot();
        assert_eq!(s.live(Category::Weights), 100);
        assert_eq!(s.peak(Category::Weights), 150);
        assert_eq!(s.total_peak(), 150);
        drop(a);
        assert_eq!(snapshot().total_live(), 0);
    }

    #[test]
    fn category_guard_nests() {
        reset_all();
        let _g1 = CategoryGuard::new(Category::Activations);
        {
            let _g2 = CategoryGuard::new(Category::Input);
            let r = Registration::new(10);
            assert_eq!(r.category(), Category::Input);
        }
        let r = Registration::new(10);
        assert_eq!(r.category(), Category::Activations);
    }

    #[test]
    fn total_peak_can_be_below_sum_of_peaks() {
        reset_all();
        {
            let _a = Registration::with_category(100, Category::Activations);
        }
        {
            let _b = Registration::with_category(100, Category::Input);
        }
        let s = snapshot();
        assert_eq!(s.total_peak(), 100);
        assert_eq!(s.sum_of_peaks(), 200);
    }

    #[test]
    fn reset_peaks_rebases_to_live() {
        reset_all();
        let _a = Registration::with_category(40, Category::Other);
        {
            let _b = Registration::with_category(60, Category::Other);
        }
        assert_eq!(snapshot().peak(Category::Other), 100);
        reset_peaks();
        assert_eq!(snapshot().peak(Category::Other), 40);
    }

    #[test]
    fn event_log_records_alloc_and_free_in_order() {
        reset_all();
        enable_event_log();
        {
            let _a = Registration::with_category(64, Category::Workspace);
        }
        let events = take_events();
        assert_eq!(events.len(), 2);
        assert!(events[0].is_alloc && !events[1].is_alloc);
        assert_eq!(events[0].id, events[1].id);
        assert_eq!(events[0].bytes, 64);
    }

    #[test]
    fn injected_pressure_counts_until_released() {
        reset_all();
        inject_pressure(1 << 20, Category::Activations);
        let s = snapshot();
        assert_eq!(s.live(Category::Activations), 1 << 20);
        assert_eq!(s.peak(Category::Activations), 1 << 20);
        assert_eq!(injected_pressure(), 1 << 20);
        assert_eq!(release_pressure(), 1 << 20);
        assert_eq!(snapshot().live(Category::Activations), 0);
        assert_eq!(injected_pressure(), 0);
    }

    #[test]
    fn snapshot_display_is_nonempty() {
        reset_all();
        let _a = Registration::new(8);
        let text = snapshot().to_string();
        assert!(text.contains("peak"));
        assert!(text.contains("others"));
    }
}
