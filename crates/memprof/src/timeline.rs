//! Within-iteration memory timelines.
//!
//! The defining visual of activation checkpointing is the *shape* of
//! memory over one training iteration: baseline BPTT ramps up for the
//! whole forward pass and drains during the backward (one big sawtooth),
//! while a checkpointed iteration shows `C` small humps, and Skipper's
//! humps are smaller still. This module reconstructs that curve from the
//! tracker's [`AllocEvent`] log — no instrumentation inside the trainers
//! required.

use crate::category::Category;
use crate::tracker::AllocEvent;
use serde::{Deserialize, Serialize};

/// Live bytes after one allocation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelinePoint {
    /// Index of the event this point follows.
    pub event_index: usize,
    /// Live bytes per category.
    pub live: [u64; Category::COUNT],
    /// Total live bytes.
    pub total: u64,
}

impl TimelinePoint {
    /// Live bytes of one category.
    pub fn live(&self, category: Category) -> u64 {
        self.live[category.index()]
    }
}

/// Replay `events` into a per-event live-bytes curve.
pub fn timeline_from_events(events: &[AllocEvent]) -> Vec<TimelinePoint> {
    let mut live = [0u64; Category::COUNT];
    let mut total = 0u64;
    events
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let slot = &mut live[e.category.index()];
            if e.is_alloc {
                *slot += e.bytes;
                total += e.bytes;
            } else {
                *slot = slot.saturating_sub(e.bytes);
                total = total.saturating_sub(e.bytes);
            }
            TimelinePoint {
                event_index: i,
                live,
                total,
            }
        })
        .collect()
}

/// Reduce a timeline to at most `n` points, keeping each bucket's maximum
/// (so peaks survive downsampling).
pub fn downsample(points: &[TimelinePoint], n: usize) -> Vec<TimelinePoint> {
    if points.len() <= n || n == 0 {
        return points.to_vec();
    }
    let bucket = points.len().div_ceil(n);
    points
        .chunks(bucket)
        .map(|chunk| {
            *chunk
                .iter()
                .max_by_key(|p| p.total)
                // lint:allow(panic): chunks() never yields an empty slice
                .expect("chunks are non-empty")
        })
        .collect()
}

/// Render one category of a timeline as a unicode sparkline.
pub fn sparkline(points: &[TimelinePoint], category: Category) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = points
        .iter()
        .map(|p| p.live(category))
        .max()
        .unwrap_or(0)
        .max(1);
    points
        .iter()
        .map(|p| {
            let idx = (p.live(category) * (BARS.len() as u64 - 1) + max / 2) / max;
            BARS[idx as usize]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64, bytes: u64, is_alloc: bool, category: Category) -> AllocEvent {
        AllocEvent {
            id,
            bytes,
            is_alloc,
            category,
        }
    }

    #[test]
    fn timeline_tracks_rise_and_fall() {
        let events = vec![
            ev(0, 100, true, Category::Activations),
            ev(1, 50, true, Category::Activations),
            ev(0, 100, false, Category::Activations),
            ev(1, 50, false, Category::Activations),
        ];
        let tl = timeline_from_events(&events);
        let totals: Vec<u64> = tl.iter().map(|p| p.total).collect();
        assert_eq!(totals, vec![100, 150, 50, 0]);
        assert_eq!(tl[1].live(Category::Activations), 150);
    }

    #[test]
    fn categories_are_separate() {
        let events = vec![
            ev(0, 10, true, Category::Weights),
            ev(1, 20, true, Category::Activations),
        ];
        let tl = timeline_from_events(&events);
        assert_eq!(tl[1].live(Category::Weights), 10);
        assert_eq!(tl[1].live(Category::Activations), 20);
        assert_eq!(tl[1].total, 30);
    }

    #[test]
    fn downsample_preserves_the_peak() {
        let events: Vec<AllocEvent> = (0..100)
            .map(|i| ev(i, 8, true, Category::Other))
            .chain((0..100).map(|i| ev(i, 8, false, Category::Other)))
            .collect();
        let tl = timeline_from_events(&events);
        let peak = tl.iter().map(|p| p.total).max().unwrap();
        let small = downsample(&tl, 10);
        assert!(small.len() <= 10 + 1);
        assert_eq!(small.iter().map(|p| p.total).max().unwrap(), peak);
    }

    #[test]
    fn sparkline_has_one_char_per_point() {
        let events = vec![
            ev(0, 1, true, Category::Activations),
            ev(1, 100, true, Category::Activations),
        ];
        let tl = timeline_from_events(&events);
        let s = sparkline(&tl, Category::Activations);
        assert_eq!(s.chars().count(), 2);
        assert!(s.ends_with('█'));
    }

    #[test]
    fn empty_events_give_empty_timeline() {
        assert!(timeline_from_events(&[]).is_empty());
        assert_eq!(downsample(&[], 10).len(), 0);
    }
}
