//! Device presets for the platforms the paper evaluates on.
//!
//! The paper measures on NVIDIA A100-80GB servers (Section VII) and on a
//! 4 GiB Jetson Nano (Section VII-H, Fig. 15, where the ~2 GiB CUDA context
//! forces swap to be configured). A [`DeviceModel`] carries everything the
//! memory and latency models need: capacity, context constant, peak compute
//! and bandwidth, and kernel launch overhead.

use serde::{Deserialize, Serialize};

/// Hardware parameters of a (simulated) accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Human-readable name shown in reports.
    pub name: String,
    /// Total device memory in bytes.
    pub capacity_bytes: u64,
    /// Memory consumed by the driver/runtime context before any tensor is
    /// allocated (the "CUDA context" share of Fig. 13).
    pub context_bytes: u64,
    /// Peak single-precision throughput, FLOP/s.
    pub peak_flops: f64,
    /// Peak memory bandwidth, bytes/s.
    pub mem_bandwidth: f64,
    /// Fixed per-kernel launch overhead, seconds.
    pub launch_overhead_s: f64,
}

impl DeviceModel {
    /// NVIDIA A100-80GB (SXM): 19.5 TFLOP/s fp32, ~2 TB/s HBM2e.
    pub fn a100_80gb() -> DeviceModel {
        DeviceModel {
            name: "A100-80GB".to_owned(),
            capacity_bytes: 80 * (1 << 30),
            context_bytes: 600 * (1 << 20),
            peak_flops: 19.5e12,
            mem_bandwidth: 2.0e12,
            launch_overhead_s: 5e-6,
        }
    }

    /// NVIDIA Jetson Nano 4GB: 472 GFLOP/s fp16-ish, 25.6 GB/s LPDDR4.
    ///
    /// The context on the Nano is disproportionately large (~2 GiB of the
    /// 4 GiB unified memory), which is why the paper adds 4 GiB of swap; we
    /// model the swap by extending the capacity and leaving the context at
    /// 2 GiB.
    pub fn jetson_nano() -> DeviceModel {
        DeviceModel {
            name: "Jetson-Nano".to_owned(),
            capacity_bytes: 8 * (1 << 30), // 4 GiB unified + 4 GiB swap
            context_bytes: 2 * (1 << 30),
            peak_flops: 472e9,
            mem_bandwidth: 25.6e9,
            launch_overhead_s: 12e-6,
        }
    }

    /// Memory left for tensors and cache after the context.
    pub fn usable_bytes(&self) -> u64 {
        self.capacity_bytes.saturating_sub(self.context_bytes)
    }

    /// Overall device occupancy as `nvidia-smi` would report it:
    /// context + reserved allocator bytes.
    pub fn overall_bytes(&self, reserved_bytes: u64) -> u64 {
        self.context_bytes + reserved_bytes
    }

    /// Whether a workload needing `reserved_bytes` beyond the context fits.
    pub fn fits(&self, reserved_bytes: u64) -> bool {
        reserved_bytes <= self.usable_bytes()
    }

    /// Modeled execution time of one kernel doing `flops` floating point
    /// operations over `bytes` of memory traffic (roofline with launch
    /// overhead).
    pub fn kernel_time_s(&self, flops: f64, bytes: f64) -> f64 {
        let compute = flops / self.peak_flops;
        let memory = bytes / self.mem_bandwidth;
        self.launch_overhead_s + compute.max(memory)
    }
}

impl Default for DeviceModel {
    fn default() -> Self {
        DeviceModel::a100_80gb()
    }
}

impl std::fmt::Display for DeviceModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({:.0} GiB, ctx {:.1} GiB)",
            self.name,
            self.capacity_bytes as f64 / (1u64 << 30) as f64,
            self.context_bytes as f64 / (1u64 << 30) as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_capacity_and_fit() {
        let d = DeviceModel::a100_80gb();
        assert!(d.fits(70 * (1 << 30)));
        assert!(!d.fits(81 * (1 << 30)));
        assert_eq!(d.overall_bytes(1 << 30), d.context_bytes + (1 << 30));
    }

    #[test]
    fn nano_has_huge_context_share() {
        let d = DeviceModel::jetson_nano();
        assert!(d.context_bytes * 2 >= d.capacity_bytes / 2);
        assert!(d.usable_bytes() < d.capacity_bytes);
    }

    #[test]
    fn kernel_time_is_roofline_shaped() {
        let d = DeviceModel::a100_80gb();
        // Tiny kernel: launch overhead dominates.
        let tiny = d.kernel_time_s(1e3, 1e3);
        assert!((tiny - d.launch_overhead_s).abs() / d.launch_overhead_s < 0.01);
        // Compute-bound kernel.
        let big = d.kernel_time_s(1e12, 1e6);
        assert!(big > 0.04 && big < 0.06);
        // Bandwidth-bound kernel.
        let bw = d.kernel_time_s(1e6, 1e12);
        assert!(bw > 0.4 && bw < 0.6);
    }

    #[test]
    fn larger_batches_amortise_launch_overhead() {
        // The per-sample time of a batched kernel must fall with batch size:
        // this is the mechanism behind the paper's Fig. 3(e,f).
        let d = DeviceModel::a100_80gb();
        let per_sample = |b: f64| d.kernel_time_s(b * 1e6, b * 1e4) / b;
        assert!(per_sample(256.0) < per_sample(32.0));
        assert!(per_sample(32.0) < per_sample(1.0));
    }

    #[test]
    fn display_mentions_name() {
        assert!(DeviceModel::a100_80gb().to_string().contains("A100"));
    }
}
