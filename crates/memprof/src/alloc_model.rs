//! Event-driven model of a PyTorch-style caching device allocator.
//!
//! The paper's Fig. 13 splits overall device memory into *tensors*,
//! *PyTorch cache* and *CUDA context*. The cache exists because frameworks
//! never return freed blocks to the device: they round requests up, keep
//! freed blocks on free lists, and only `cudaMalloc` when no cached block
//! fits. `reserved` memory (what `nvidia-smi` sees on top of the context) is
//! therefore the **high watermark of blocks ever requested from the
//! device**, not the live tensor bytes.
//!
//! [`CachingAllocator`] replays the [`AllocEvent`] stream captured by the
//! [tracker](crate::tracker) and reports both numbers. The rounding rules
//! follow the CUDA caching allocator: small requests round to 512 B,
//! requests of 1 MiB or more round to 2 MiB blocks; a cached block may be
//! reused for a request of at most its size and at least half its size
//! (a stand-in for PyTorch's split-with-remainder policy).

use crate::tracker::AllocEvent;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Granularity of small allocations (bytes).
pub const SMALL_ROUND: u64 = 512;
/// Threshold above which allocations use large blocks (bytes).
pub const LARGE_THRESHOLD: u64 = 1 << 20;
/// Granularity of large allocations (bytes).
pub const LARGE_ROUND: u64 = 2 << 20;

/// Round a request up the way the caching allocator would.
pub fn round_size(bytes: u64) -> u64 {
    if bytes == 0 {
        return 0;
    }
    if bytes >= LARGE_THRESHOLD {
        bytes.div_ceil(LARGE_ROUND) * LARGE_ROUND
    } else {
        bytes.div_ceil(SMALL_ROUND) * SMALL_ROUND
    }
}

/// Statistics after replaying an event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AllocStats {
    /// Peak of rounded, in-use bytes (analogue of `max_memory_allocated`).
    pub peak_allocated: u64,
    /// Bytes ever requested from the device (analogue of
    /// `max_memory_reserved`); never decreases.
    pub reserved: u64,
    /// Rounded bytes in use when the replay finished.
    pub live_allocated: u64,
    /// Number of allocations served from the cache.
    pub cache_hits: u64,
    /// Number of allocations that had to grow the reservation.
    pub cache_misses: u64,
}

impl AllocStats {
    /// Bytes held in the cache beyond live tensors at peak
    /// (`reserved − peak_allocated`).
    pub fn cache_overhead(&self) -> u64 {
        self.reserved.saturating_sub(self.peak_allocated)
    }
}

/// Model of a caching device allocator. See the module docs.
#[derive(Debug, Default)]
pub struct CachingAllocator {
    /// Free blocks: rounded size → count.
    free: BTreeMap<u64, u64>,
    /// Live allocation id → rounded size.
    live: HashMap<u64, u64>,
    allocated: u64,
    stats: AllocStats,
}

impl CachingAllocator {
    /// Fresh allocator with an empty cache.
    pub fn new() -> CachingAllocator {
        CachingAllocator::default()
    }

    /// Apply a single event.
    pub fn apply(&mut self, event: &AllocEvent) {
        if event.is_alloc {
            self.alloc(event.id, event.bytes);
        } else {
            self.free(event.id);
        }
    }

    /// Replay a whole event stream and return the resulting statistics.
    pub fn replay(events: &[AllocEvent]) -> AllocStats {
        let mut a = CachingAllocator::new();
        for e in events {
            a.apply(e);
        }
        a.stats()
    }

    fn alloc(&mut self, id: u64, bytes: u64) {
        let want = round_size(bytes);
        if want == 0 {
            self.live.insert(id, 0);
            return;
        }
        // Best fit: smallest cached block that fits and wastes at most 2x.
        let candidate = self
            .free
            .range(want..=want.saturating_mul(2))
            .next()
            .map(|(&size, _)| size);
        let granted = if let Some(size) = candidate {
            // lint:allow(panic): candidate key was just yielded by a range scan of the same free map
            let count = self.free.get_mut(&size).expect("candidate block exists");
            *count -= 1;
            if *count == 0 {
                self.free.remove(&size);
            }
            self.stats.cache_hits += 1;
            size
        } else {
            self.stats.reserved += want;
            self.stats.cache_misses += 1;
            want
        };
        self.allocated += granted;
        self.stats.peak_allocated = self.stats.peak_allocated.max(self.allocated);
        self.live.insert(id, granted);
    }

    fn free(&mut self, id: u64) {
        let Some(size) = self.live.remove(&id) else {
            return; // unmatched free: ignore, mirroring allocator leniency
        };
        if size == 0 {
            return;
        }
        self.allocated -= size;
        *self.free.entry(size).or_insert(0) += 1;
    }

    /// Statistics accumulated so far, with the live counter filled in.
    pub fn stats(&self) -> AllocStats {
        AllocStats {
            live_allocated: self.allocated,
            ..self.stats
        }
    }

    /// Rounded bytes currently in use.
    pub fn live_allocated(&self) -> u64 {
        self.allocated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::Category;

    fn ev(id: u64, bytes: u64, is_alloc: bool) -> AllocEvent {
        AllocEvent {
            id,
            bytes,
            is_alloc,
            category: Category::Other,
        }
    }

    #[test]
    fn rounding_small_and_large() {
        assert_eq!(round_size(0), 0);
        assert_eq!(round_size(1), 512);
        assert_eq!(round_size(512), 512);
        assert_eq!(round_size(513), 1024);
        assert_eq!(round_size(1 << 20), 2 << 20);
        assert_eq!(round_size((2 << 20) + 1), 4 << 20);
    }

    #[test]
    fn cache_reuse_avoids_reservation_growth() {
        let events = vec![
            ev(0, 4096, true),
            ev(0, 4096, false),
            ev(1, 4096, true),
            ev(1, 4096, false),
        ];
        let stats = CachingAllocator::replay(&events);
        assert_eq!(stats.reserved, 4096);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
    }

    #[test]
    fn reserved_is_high_watermark() {
        // Two overlapping 4 KiB allocations force reservation of 8 KiB even
        // though each is freed eventually.
        let events = vec![
            ev(0, 4096, true),
            ev(1, 4096, true),
            ev(0, 4096, false),
            ev(1, 4096, false),
            ev(2, 4096, true),
        ];
        let stats = CachingAllocator::replay(&events);
        assert_eq!(stats.reserved, 8192);
        assert_eq!(stats.peak_allocated, 8192);
    }

    #[test]
    fn oversized_cached_block_is_not_reused_beyond_2x() {
        let events = vec![
            ev(0, 100 << 10, true), // 100 KiB
            ev(0, 100 << 10, false),
            ev(1, 10 << 10, true), // 10 KiB: cached 100 KiB block wastes >2x
        ];
        let stats = CachingAllocator::replay(&events);
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.reserved, round_size(100 << 10) + round_size(10 << 10));
    }

    #[test]
    fn zero_sized_allocations_are_noops() {
        let events = vec![ev(0, 0, true), ev(0, 0, false)];
        let stats = CachingAllocator::replay(&events);
        assert_eq!(stats.reserved, 0);
        assert_eq!(stats.peak_allocated, 0);
    }

    #[test]
    fn peak_allocated_at_least_live_sum() {
        let events = vec![ev(0, 1000, true), ev(1, 2000, true)];
        let stats = CachingAllocator::replay(&events);
        assert!(stats.peak_allocated >= 3000);
        assert!(stats.reserved >= stats.peak_allocated);
    }
}
