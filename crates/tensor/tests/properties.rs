//! Property-based tests of the tensor kernels: algebraic identities that
//! must hold for arbitrary shapes and values.

use proptest::prelude::*;
use skipper_tensor::{
    avg_pool2d, avg_pool2d_backward, conv2d, matmul, matmul_nt, matmul_tn, Conv2dSpec, Tensor,
    XorShiftRng,
};

fn tensor_strategy(numel: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, numel)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// (A·B)·C == A·(B·C) within float tolerance.
    #[test]
    fn matmul_is_associative(
        m in 1usize..6, k in 1usize..6, n in 1usize..6, q in 1usize..6,
        seed in 0u64..10_000,
    ) {
        let mut rng = XorShiftRng::new(seed);
        let a = Tensor::randn([m, k], &mut rng);
        let b = Tensor::randn([k, n], &mut rng);
        let c = Tensor::randn([n, q], &mut rng);
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        prop_assert!(left.allclose(&right, 1e-3));
    }

    /// A·(B + C) == A·B + A·C.
    #[test]
    fn matmul_distributes_over_add(
        m in 1usize..6, k in 1usize..6, n in 1usize..6,
        seed in 0u64..10_000,
    ) {
        let mut rng = XorShiftRng::new(seed);
        let a = Tensor::randn([m, k], &mut rng);
        let b = Tensor::randn([k, n], &mut rng);
        let c = Tensor::randn([k, n], &mut rng);
        let left = matmul(&a, &b.add(&c));
        let right = matmul(&a, &b).add(&matmul(&a, &c));
        prop_assert!(left.allclose(&right, 1e-3));
    }

    /// The transpose variants agree with plain matmul on materialised
    /// transposes.
    #[test]
    fn matmul_variants_consistent(
        m in 1usize..5, k in 1usize..5, n in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let mut rng = XorShiftRng::new(seed);
        let a = Tensor::randn([m, k], &mut rng);
        let b = Tensor::randn([k, n], &mut rng);
        // Materialise transposes by index shuffling.
        let at = Tensor::from_fn([k, m], |i| a.at(&[i % m, i / m]));
        let bt = Tensor::from_fn([n, k], |i| b.at(&[i % k, i / k]));
        let plain = matmul(&a, &b);
        prop_assert!(matmul_tn(&at, &b).allclose(&plain, 1e-4));
        prop_assert!(matmul_nt(&a, &bt).allclose(&plain, 1e-4));
    }

    /// Convolution is linear in its input.
    #[test]
    fn conv_is_linear_in_input(
        b in 1usize..3, cin in 1usize..3, cout in 1usize..3, hw in 3usize..6,
        alpha in -3.0f32..3.0,
        seed in 0u64..10_000,
    ) {
        let mut rng = XorShiftRng::new(seed);
        let spec = Conv2dSpec::padded(1);
        let x = Tensor::randn([b, cin, hw, hw], &mut rng);
        let y = Tensor::randn([b, cin, hw, hw], &mut rng);
        let w = Tensor::randn([cout, cin, 3, 3], &mut rng);
        let lhs = conv2d(&x.add_scaled(&y, alpha), &w, None, spec);
        let rhs = conv2d(&x, &w, None, spec).add_scaled(&conv2d(&y, &w, None, spec), alpha);
        prop_assert!(lhs.allclose(&rhs, 1e-2));
    }

    /// Pooling preserves the mean; its backward is the adjoint (sum of
    /// elementwise products matches on both sides: <pool(x), g> ==
    /// <x, pool_backward(g)>).
    #[test]
    fn pool_backward_is_adjoint(
        b in 1usize..3, c in 1usize..3, half in 1usize..4,
        seed in 0u64..10_000,
    ) {
        let hw = half * 2;
        let mut rng = XorShiftRng::new(seed);
        let x = Tensor::randn([b, c, hw, hw], &mut rng);
        let pooled = avg_pool2d(&x, 2);
        prop_assert!((pooled.mean() - x.mean()).abs() < 1e-4);
        let g = Tensor::randn(pooled.shape().dims(), &mut rng);
        let gx = avg_pool2d_backward(&g, x.shape().dims(), 2);
        let lhs: f64 = pooled.mul(&g).sum();
        let rhs: f64 = x.mul(&gx).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    /// Reshape round-trips and preserves data.
    #[test]
    fn reshape_roundtrip(data in tensor_strategy(24)) {
        let t = Tensor::from_vec(data.clone(), [2, 3, 4]);
        let r = t.reshape([4, 6]).reshape([24]).reshape([2, 3, 4]);
        prop_assert_eq!(r.data(), &data[..]);
        prop_assert!(t.shares_storage(&r));
    }

    /// add/sub/scale satisfy basic vector-space laws.
    #[test]
    fn elementwise_vector_space_laws(
        data_a in tensor_strategy(12),
        data_b in tensor_strategy(12),
        s in -5.0f32..5.0,
    ) {
        let a = Tensor::from_vec(data_a, [3, 4]);
        let b = Tensor::from_vec(data_b, [3, 4]);
        prop_assert!(a.add(&b).allclose(&b.add(&a), 1e-5));
        prop_assert!(a.add(&b).sub(&b).allclose(&a, 1e-4));
        prop_assert!(a.add_scaled(&b, s).allclose(&a.add(&b.scale(s)), 1e-4));
        prop_assert!(a.scale(0.0).allclose(&Tensor::zeros([3, 4]), 0.0));
    }

    /// Copy-on-write never lets a mutation leak into a clone.
    #[test]
    fn cow_isolation(data in tensor_strategy(8), idx in 0usize..8, v in -9.0f32..9.0) {
        let a = Tensor::from_vec(data.clone(), [8]);
        let mut b = a.clone();
        b.data_mut()[idx] = v;
        prop_assert_eq!(a.data(), &data[..]);
        prop_assert_eq!(b.data()[idx], v);
    }
}
