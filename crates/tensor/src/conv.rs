//! 2-D convolution kernels (im2col + GEMM), NCHW layout.
//!
//! The forward pass lowers the whole batch to one `[K, B·L]` column matrix
//! (`K = C_in·kh·kw`, `L = H_out·W_out`) and performs a single GEMM against
//! the `[C_out, K]` weight matrix — the standard GPU lowering, which keeps
//! the FLOP accounting identical to what the latency model expects. The
//! column workspace is booked under [`Category::Workspace`] so it shows up
//! in the right bucket of the memory breakdowns.
//!
//! [`Category::Workspace`]: skipper_memprof::Category::Workspace

use crate::matmul::{matmul, matmul_nt, matmul_tn};
use crate::tensor::Tensor;
use skipper_memprof::{record_op, Category, CategoryGuard, OpKind};

/// Stride and zero-padding of a convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Step between output positions.
    pub stride: usize,
    /// Zero padding added on every border.
    pub padding: usize,
}

impl Default for Conv2dSpec {
    fn default() -> Self {
        Conv2dSpec {
            stride: 1,
            padding: 0,
        }
    }
}

impl Conv2dSpec {
    /// Unit stride with `padding`.
    pub fn padded(padding: usize) -> Conv2dSpec {
        Conv2dSpec { stride: 1, padding }
    }

    /// Output extent along one spatial dimension.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the padded input.
    pub fn out_dim(&self, input: usize, kernel: usize) -> usize {
        let padded = input + 2 * self.padding;
        assert!(
            padded >= kernel,
            "kernel {kernel} larger than padded input {padded}"
        );
        (padded - kernel) / self.stride + 1
    }
}

fn unpack(input: &Tensor, weight: &Tensor, spec: Conv2dSpec) -> ConvDims {
    let (b, cin, h, w) = input.shape().as_4d();
    let (cout, cin_w, kh, kw) = weight.shape().as_4d();
    assert_eq!(
        cin,
        cin_w,
        "conv2d channels: input {} vs weight {}",
        input.shape(),
        weight.shape()
    );
    ConvDims {
        b,
        cin,
        h,
        w,
        cout,
        kh,
        kw,
        ho: spec.out_dim(h, kh),
        wo: spec.out_dim(w, kw),
        spec,
    }
}

#[derive(Debug, Clone, Copy)]
struct ConvDims {
    b: usize,
    cin: usize,
    h: usize,
    w: usize,
    cout: usize,
    kh: usize,
    kw: usize,
    ho: usize,
    wo: usize,
    spec: Conv2dSpec,
}

impl ConvDims {
    fn k(&self) -> usize {
        self.cin * self.kh * self.kw
    }
    fn l(&self) -> usize {
        self.ho * self.wo
    }
}

/// Lower `input` to the `[K, B·L]` column matrix.
fn im2col(input: &Tensor, d: &ConvDims) -> Tensor {
    let _ws = CategoryGuard::new(Category::Workspace);
    let (k, l, bl) = (d.k(), d.l(), d.b * d.l());
    let mut cols = Tensor::zeros([k, bl]);
    record_op(OpKind::Copy, 0.0, (k * bl * 4) as f64);
    let src = input.data();
    let dst = cols.data_mut();
    let (stride, pad) = (d.spec.stride, d.spec.padding);
    for c in 0..d.cin {
        for ki in 0..d.kh {
            for kj in 0..d.kw {
                let row = (c * d.kh + ki) * d.kw + kj;
                let dst_row = &mut dst[row * bl..(row + 1) * bl];
                for b in 0..d.b {
                    let src_plane = &src[(b * d.cin + c) * d.h * d.w..];
                    for oh in 0..d.ho {
                        let ih = (oh * stride + ki) as isize - pad as isize;
                        if ih < 0 || ih >= d.h as isize {
                            continue; // stays zero
                        }
                        let src_row = &src_plane[ih as usize * d.w..];
                        let out_base = b * l + oh * d.wo;
                        for ow in 0..d.wo {
                            let iw = (ow * stride + kj) as isize - pad as isize;
                            if iw < 0 || iw >= d.w as isize {
                                continue;
                            }
                            dst_row[out_base + ow] = src_row[iw as usize];
                        }
                    }
                }
            }
        }
    }
    cols
}

/// Scatter-add the `[K, B·L]` column gradient back to input layout.
fn col2im(cols: &Tensor, d: &ConvDims) -> Tensor {
    let (k, l, bl) = (d.k(), d.l(), d.b * d.l());
    assert_eq!(cols.shape().dims(), &[k, bl]);
    let mut grad_input = Tensor::zeros([d.b, d.cin, d.h, d.w]);
    record_op(OpKind::Copy, (k * bl) as f64, (k * bl * 4) as f64);
    let src = cols.data();
    let dst = grad_input.data_mut();
    let (stride, pad) = (d.spec.stride, d.spec.padding);
    for c in 0..d.cin {
        for ki in 0..d.kh {
            for kj in 0..d.kw {
                let row = (c * d.kh + ki) * d.kw + kj;
                let src_row = &src[row * bl..(row + 1) * bl];
                for b in 0..d.b {
                    let dst_base = (b * d.cin + c) * d.h * d.w;
                    for oh in 0..d.ho {
                        let ih = (oh * stride + ki) as isize - pad as isize;
                        if ih < 0 || ih >= d.h as isize {
                            continue;
                        }
                        let src_base = b * l + oh * d.wo;
                        for ow in 0..d.wo {
                            let iw = (ow * stride + kj) as isize - pad as isize;
                            if iw < 0 || iw >= d.w as isize {
                                continue;
                            }
                            dst[dst_base + ih as usize * d.w + iw as usize] +=
                                src_row[src_base + ow];
                        }
                    }
                }
            }
        }
    }
    grad_input
}

/// Permute `[B,C,L]`-flat data to `[C, B·L]` (or back with `invert`).
fn permute_bcl_cbl(src: &[f32], b: usize, c: usize, l: usize, invert: bool) -> Vec<f32> {
    let mut out = vec![0.0f32; b * c * l];
    for bi in 0..b {
        for ci in 0..c {
            for li in 0..l {
                let bcl = (bi * c + ci) * l + li;
                let cbl = ci * (b * l) + bi * l + li;
                if invert {
                    out[bcl] = src[cbl];
                } else {
                    out[cbl] = src[bcl];
                }
            }
        }
    }
    out
}

/// Convolution forward: `input [B,Cin,H,W] ⋆ weight [Cout,Cin,kh,kw]
/// (+ bias [Cout]) → [B,Cout,Ho,Wo]`.
///
/// # Panics
///
/// Panics on rank or channel mismatches, or if the kernel exceeds the
/// padded input.
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: Option<&Tensor>, spec: Conv2dSpec) -> Tensor {
    let d = unpack(input, weight, spec);
    let cols = im2col(input, &d);
    let wmat = weight.reshape([d.cout, d.k()]);
    let out_mat = matmul(&wmat, &cols); // [Cout, B·L]
    record_op(OpKind::Conv, 0.0, out_mat.byte_size() as f64);
    let mut data = permute_bcl_cbl(out_mat.data(), d.b, d.cout, d.l(), true);
    if let Some(bias) = bias {
        assert_eq!(bias.numel(), d.cout, "bias length vs out channels");
        let bdata = bias.data();
        let l = d.l();
        for bi in 0..d.b {
            for (ci, &bv) in bdata.iter().enumerate() {
                let base = (bi * d.cout + ci) * l;
                for v in &mut data[base..base + l] {
                    *v += bv;
                }
            }
        }
    }
    Tensor::from_vec(data, [d.b, d.cout, d.ho, d.wo])
}

/// Gradient of the convolution with respect to its input.
///
/// `grad_output` has the forward output's shape `[B,Cout,Ho,Wo]`.
///
/// # Panics
///
/// Panics if `grad_output`'s shape is inconsistent with
/// `input_shape`/`weight`/`spec`.
pub fn conv2d_backward_input(
    grad_output: &Tensor,
    input_shape: &[usize],
    weight: &Tensor,
    spec: Conv2dSpec,
) -> Tensor {
    let probe = Tensor::zeros(input_shape);
    let d = unpack(&probe, weight, spec);
    drop(probe);
    assert_eq!(
        grad_output.shape().dims(),
        &[d.b, d.cout, d.ho, d.wo],
        "grad_output shape mismatch"
    );
    let _ws = CategoryGuard::new(Category::Workspace);
    let grad_mat = Tensor::from_vec(
        permute_bcl_cbl(grad_output.data(), d.b, d.cout, d.l(), false),
        [d.cout, d.b * d.l()],
    );
    let wmat = weight.reshape([d.cout, d.k()]);
    let col_grad = matmul_tn(&wmat, &grad_mat); // [K, B·L]
    col2im(&col_grad, &d)
}

/// Gradients of the convolution with respect to weight and bias.
///
/// Returns `(grad_weight, grad_bias)`; `grad_bias` is the per-channel sum
/// of `grad_output`.
pub fn conv2d_backward_weight(
    grad_output: &Tensor,
    input: &Tensor,
    weight_shape: &[usize],
    spec: Conv2dSpec,
) -> (Tensor, Tensor) {
    let probe = Tensor::zeros(weight_shape);
    let d = unpack(input, &probe, spec);
    drop(probe);
    assert_eq!(
        grad_output.shape().dims(),
        &[d.b, d.cout, d.ho, d.wo],
        "grad_output shape mismatch"
    );
    let cols = im2col(input, &d);
    let grad_mat = {
        let _ws = CategoryGuard::new(Category::Workspace);
        Tensor::from_vec(
            permute_bcl_cbl(grad_output.data(), d.b, d.cout, d.l(), false),
            [d.cout, d.b * d.l()],
        )
    };
    let grad_w = matmul_nt(&grad_mat, &cols).reshape([d.cout, d.cin, d.kh, d.kw]);
    // Bias gradient: sum grad_output over batch and spatial dims.
    let mut grad_b = Tensor::zeros([d.cout]);
    record_op(
        OpKind::Reduce,
        grad_output.numel() as f64,
        grad_output.byte_size() as f64,
    );
    {
        let gb = grad_b.data_mut();
        let go = grad_output.data();
        let l = d.l();
        for bi in 0..d.b {
            for (ci, g) in gb.iter_mut().enumerate() {
                let base = (bi * d.cout + ci) * l;
                *g += go[base..base + l].iter().sum::<f32>();
            }
        }
    }
    (grad_w, grad_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::XorShiftRng;

    /// Direct (quadruple-loop) reference convolution.
    fn naive_conv(
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: Conv2dSpec,
    ) -> Tensor {
        let d = unpack(input, weight, spec);
        let mut out = Tensor::zeros([d.b, d.cout, d.ho, d.wo]);
        for b in 0..d.b {
            for co in 0..d.cout {
                for oh in 0..d.ho {
                    for ow in 0..d.wo {
                        let mut acc = bias.map_or(0.0, |t| t.data()[co]);
                        for ci in 0..d.cin {
                            for ki in 0..d.kh {
                                for kj in 0..d.kw {
                                    let ih =
                                        (oh * spec.stride + ki) as isize - spec.padding as isize;
                                    let iw =
                                        (ow * spec.stride + kj) as isize - spec.padding as isize;
                                    if ih < 0 || iw < 0 || ih >= d.h as isize || iw >= d.w as isize
                                    {
                                        continue;
                                    }
                                    acc += input.at(&[b, ci, ih as usize, iw as usize])
                                        * weight.at(&[co, ci, ki, kj]);
                                }
                            }
                        }
                        let idx = ((b * d.cout + co) * d.ho + oh) * d.wo + ow;
                        out.data_mut()[idx] = acc;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn out_dim_arithmetic() {
        let s = Conv2dSpec::padded(1);
        assert_eq!(s.out_dim(8, 3), 8);
        let s2 = Conv2dSpec {
            stride: 2,
            padding: 0,
        };
        assert_eq!(s2.out_dim(8, 2), 4);
    }

    #[test]
    fn forward_matches_naive() {
        let mut rng = XorShiftRng::new(2);
        for &(spec, hw) in &[
            (Conv2dSpec::padded(1), 6),
            (
                Conv2dSpec {
                    stride: 2,
                    padding: 1,
                },
                7,
            ),
            (Conv2dSpec::default(), 5),
        ] {
            let input = Tensor::randn([2, 3, hw, hw], &mut rng);
            let weight = Tensor::randn([4, 3, 3, 3], &mut rng);
            let bias = Tensor::randn([4], &mut rng);
            let fast = conv2d(&input, &weight, Some(&bias), spec);
            let slow = naive_conv(&input, &weight, Some(&bias), spec);
            assert!(fast.allclose(&slow, 1e-4), "spec {spec:?}");
        }
    }

    #[test]
    fn backward_input_matches_finite_difference() {
        let mut rng = XorShiftRng::new(5);
        let spec = Conv2dSpec::padded(1);
        let input = Tensor::randn([1, 2, 4, 4], &mut rng);
        let weight = Tensor::randn([3, 2, 3, 3], &mut rng);
        let go = Tensor::randn([1, 3, 4, 4], &mut rng);
        let gi = conv2d_backward_input(&go, input.shape().dims(), &weight, spec);

        let eps = 1e-2f32;
        for probe in [0usize, 7, 13, 31] {
            let mut plus = input.deep_clone();
            plus.data_mut()[probe] += eps;
            let mut minus = input.deep_clone();
            minus.data_mut()[probe] -= eps;
            let f = |x: &Tensor| -> f64 {
                conv2d(x, &weight, None, spec)
                    .data()
                    .iter()
                    .zip(go.data())
                    .map(|(&o, &g)| (o * g) as f64)
                    .sum()
            };
            let num = ((f(&plus) - f(&minus)) / (2.0 * eps as f64)) as f32;
            let ana = gi.data()[probe];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + ana.abs()),
                "elem {probe}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn backward_weight_matches_finite_difference() {
        let mut rng = XorShiftRng::new(6);
        let spec = Conv2dSpec {
            stride: 2,
            padding: 1,
        };
        let input = Tensor::randn([2, 2, 5, 5], &mut rng);
        let weight = Tensor::randn([2, 2, 3, 3], &mut rng);
        let out = conv2d(&input, &weight, None, spec);
        let go = Tensor::randn(out.shape().dims(), &mut rng);
        let (gw, gb) = conv2d_backward_weight(&go, &input, weight.shape().dims(), spec);

        let eps = 1e-2f32;
        for probe in [0usize, 5, 17, 35] {
            let mut plus = weight.deep_clone();
            plus.data_mut()[probe] += eps;
            let mut minus = weight.deep_clone();
            minus.data_mut()[probe] -= eps;
            let f = |w: &Tensor| -> f64 {
                conv2d(&input, w, None, spec)
                    .data()
                    .iter()
                    .zip(go.data())
                    .map(|(&o, &g)| (o * g) as f64)
                    .sum()
            };
            let num = ((f(&plus) - f(&minus)) / (2.0 * eps as f64)) as f32;
            let ana = gw.data()[probe];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + ana.abs()),
                "elem {probe}: numeric {num} vs analytic {ana}"
            );
        }
        // Bias gradient is the channel-wise sum of grad_output.
        let mut expect = vec![0.0f32; 2];
        let l = out.numel() / (2 * 2);
        for b in 0..2 {
            for (c, e) in expect.iter_mut().enumerate() {
                let base = (b * 2 + c) * l;
                *e += go.data()[base..base + l].iter().sum::<f32>();
            }
        }
        assert!(gb.allclose(&Tensor::from_vec(expect, [2]), 1e-4));
    }

    #[test]
    fn workspace_is_booked_under_workspace_category() {
        use skipper_memprof as mp;
        mp::reset_all();
        let input = Tensor::ones([1, 1, 4, 4]);
        let weight = Tensor::ones([1, 1, 3, 3]);
        mp::reset_peaks();
        let _ = conv2d(&input, &weight, None, Conv2dSpec::default());
        assert!(mp::snapshot().peak(mp::Category::Workspace) > 0);
    }
}
