//! A tiny, fast, deterministic RNG for weight initialisation and spike
//! encoding.
//!
//! Poisson rate encoding draws one uniform number per input pixel per
//! timestep, i.e. hundreds of millions of draws per epoch, so the encoder
//! needs something cheaper and more reproducible across platforms than a
//! cryptographic generator. `XorShiftRng` is the xorshift64* generator:
//! one multiply and three shifts per draw, full 2^64−1 period.

/// xorshift64* pseudo-random number generator.
///
/// ```
/// use skipper_tensor::XorShiftRng;
/// let mut a = XorShiftRng::new(7);
/// let mut b = XorShiftRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShiftRng {
    state: u64,
}

impl XorShiftRng {
    /// Seeded generator; a zero seed is remapped (xorshift requires a
    /// non-zero state).
    pub fn new(seed: u64) -> XorShiftRng {
        XorShiftRng {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        // 24 high bits → mantissa-exact uniform in [0,1).
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard normal via Box–Muller.
    pub fn next_normal(&mut self) -> f32 {
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE); // (0,1]
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        (r * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn next_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "next_below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Fork a statistically independent child generator (used to give every
    /// sample/timestep its own stream without long skips).
    pub fn fork(&mut self, tag: u64) -> XorShiftRng {
        let mixed = self
            .next_u64()
            .wrapping_add(tag.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        XorShiftRng::new(mixed | 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_nonzero_seed_safe() {
        let mut a = XorShiftRng::new(0);
        let mut b = XorShiftRng::new(0);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), 0);
    }

    #[test]
    fn uniform_range_and_mean() {
        let mut rng = XorShiftRng::new(123);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let x = rng.next_f32();
            assert!((0.0..1.0).contains(&x));
            sum += x as f64;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn normal_moments() {
        let mut rng = XorShiftRng::new(7);
        let n = 20_000;
        let (mut m, mut v) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let x = rng.next_normal() as f64;
            m += x;
            v += x * x;
        }
        m /= n as f64;
        v = v / n as f64 - m * m;
        assert!(m.abs() < 0.03, "mean {m}");
        assert!((v - 1.0).abs() < 0.05, "var {v}");
    }

    #[test]
    fn next_below_in_range() {
        let mut rng = XorShiftRng::new(9);
        for _ in 0..1000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    fn forks_differ_from_parent_and_each_other() {
        let mut rng = XorShiftRng::new(5);
        let mut f1 = rng.fork(1);
        let mut f2 = rng.fork(2);
        let (a, b, c) = (rng.next_u64(), f1.next_u64(), f2.next_u64());
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }
}
