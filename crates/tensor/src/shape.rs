//! Tensor shapes.

use std::fmt;

/// The dimensions of a [`Tensor`](crate::Tensor), row-major.
///
/// A `Shape` may have any rank, including 0 (a scalar with one element).
///
/// ```
/// use skipper_tensor::Shape;
/// let s = Shape::new([2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s[1], 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Shape from anything convertible to a dimension list.
    pub fn new(dims: impl Into<Shape>) -> Shape {
        dims.into()
    }

    /// Scalar shape (rank 0, one element).
    pub fn scalar() -> Shape {
        Shape(Vec::new())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dimensions; 1 for scalars).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// The dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Row-major strides of this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds (debug builds only for the bounds check).
    #[inline]
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let mut off = 0;
        for (d, (&i, &n)) in index.iter().zip(&self.0).enumerate() {
            debug_assert!(i < n, "index {i} out of bounds for dim {d} of size {n}");
            off = off * n + i;
        }
        off
    }

    /// Two-dimensional accessor helpers: `(rows, cols)`.
    ///
    /// # Panics
    ///
    /// Panics if the rank is not 2.
    pub fn as_2d(&self) -> (usize, usize) {
        assert_eq!(self.rank(), 2, "expected rank-2 shape, got {self}");
        (self.0[0], self.0[1])
    }

    /// Four-dimensional accessor: `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the rank is not 4.
    pub fn as_4d(&self) -> (usize, usize, usize, usize) {
        assert_eq!(self.rank(), 4, "expected rank-4 shape, got {self}");
        (self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

impl std::ops::Index<usize> for Shape {
    type Output = usize;
    fn index(&self, i: usize) -> &usize {
        &self.0[i]
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Shape {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Shape {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Shape {
        Shape(dims.to_vec())
    }
}

impl From<usize> for Shape {
    fn from(dim: usize) -> Shape {
        Shape(vec![dim])
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        assert_eq!(Shape::new([2, 3]).numel(), 6);
        assert_eq!(Shape::scalar().numel(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
        assert_eq!(Shape::new(5usize).dims(), &[5]);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new([7]).strides(), vec![1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
        assert_eq!(s.offset(&[1, 0, 1]), 13);
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn offset_rejects_wrong_rank() {
        Shape::new([2, 2]).offset(&[1]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new([2, 3]).to_string(), "[2x3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}
