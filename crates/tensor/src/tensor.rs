//! The dense tensor type.

use crate::random::XorShiftRng;
use crate::shape::Shape;
use skipper_memprof::{record_op, OpKind, Registration};
use std::fmt;
use std::sync::Arc;

/// Backing buffer of a tensor. Registers its bytes with the memory tracker
/// for as long as it lives.
#[derive(Debug)]
struct Storage {
    data: Vec<f32>,
    _reg: Registration,
}

impl Storage {
    fn new(data: Vec<f32>) -> Storage {
        let bytes = (data.len() * std::mem::size_of::<f32>()) as u64;
        Storage {
            data,
            _reg: Registration::new(bytes),
        }
    }

    fn with_category_of(data: Vec<f32>, other: &Storage) -> Storage {
        let bytes = (data.len() * std::mem::size_of::<f32>()) as u64;
        Storage {
            data,
            _reg: Registration::with_category(bytes, other._reg.category()),
        }
    }
}

impl Clone for Storage {
    /// Deep copy; the copy is booked under the *same category* as the
    /// original (a cloned activation stays an activation).
    fn clone(&self) -> Storage {
        Storage::with_category_of(self.data.clone(), self)
    }
}

/// A dense, row-major `f32` tensor.
///
/// `Tensor` is cheap to [`Clone`] (reference-counted storage); mutation
/// through [`Tensor::data_mut`] is copy-on-write. Every distinct storage is
/// registered with [`skipper_memprof`] under the category active at creation
/// time, which is how the training stack reproduces the paper's memory
/// measurements.
///
/// ```
/// use skipper_tensor::Tensor;
/// let t = Tensor::zeros([2, 3]);
/// assert_eq!(t.numel(), 6);
/// let u = t.reshape([3, 2]); // same storage, new shape
/// assert_eq!(u.shape().dims(), &[3, 2]);
/// ```
#[derive(Clone)]
pub struct Tensor {
    storage: Arc<Storage>,
    shape: Shape,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Tensor {
        Tensor::full(shape, 0.0)
    }

    /// Tensor of ones.
    pub fn ones(shape: impl Into<Shape>) -> Tensor {
        Tensor::full(shape, 1.0)
    }

    /// Tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Tensor {
        let shape = shape.into();
        let data = vec![value; shape.numel()];
        Tensor {
            storage: Arc::new(Storage::new(data)),
            shape,
        }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Tensor {
        let mut t = Tensor::zeros([n, n]);
        let d = t.data_mut();
        for i in 0..n {
            d[i * n + i] = 1.0;
        }
        t
    }

    /// Tensor from a flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer length {} does not match shape {shape}",
            data.len()
        );
        Tensor {
            storage: Arc::new(Storage::new(data)),
            shape,
        }
    }

    /// Tensor whose flat element `i` is `f(i)`.
    pub fn from_fn(shape: impl Into<Shape>, f: impl FnMut(usize) -> f32) -> Tensor {
        let shape = shape.into();
        let data = (0..shape.numel()).map(f).collect();
        Tensor::from_vec(data, shape)
    }

    /// Standard-normal tensor (Box–Muller over `rng`).
    pub fn randn(shape: impl Into<Shape>, rng: &mut XorShiftRng) -> Tensor {
        let shape = shape.into();
        let data = (0..shape.numel()).map(|_| rng.next_normal()).collect();
        Tensor::from_vec(data, shape)
    }

    /// Uniform `[0, 1)` tensor.
    pub fn rand(shape: impl Into<Shape>, rng: &mut XorShiftRng) -> Tensor {
        let shape = shape.into();
        let data = (0..shape.numel()).map(|_| rng.next_f32()).collect();
        Tensor::from_vec(data, shape)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Size in bytes of the element buffer.
    pub fn byte_size(&self) -> u64 {
        (self.numel() * std::mem::size_of::<f32>()) as u64
    }

    /// The elements, row-major.
    pub fn data(&self) -> &[f32] {
        &self.storage.data
    }

    /// Mutable access to the elements (copy-on-write: clones the storage if
    /// it is shared).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut Arc::make_mut(&mut self.storage).data
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.storage.data[self.shape.offset(index)]
    }

    /// Whether this tensor shares storage with `other`.
    pub fn shares_storage(&self, other: &Tensor) -> bool {
        Arc::ptr_eq(&self.storage, &other.storage)
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// View with a different shape over the same storage.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.numel(),
            "cannot reshape {} to {shape}",
            self.shape
        );
        Tensor {
            storage: Arc::clone(&self.storage),
            shape,
        }
    }

    /// Deep copy with independent storage (booked under the original
    /// storage's category).
    pub fn deep_clone(&self) -> Tensor {
        Tensor {
            storage: Arc::new(Storage::clone(&self.storage)),
            shape: self.shape.clone(),
        }
    }

    // ------------------------------------------------------------------
    // Elementwise arithmetic (allocating)
    // ------------------------------------------------------------------

    fn zip(&self, other: &Tensor, op: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        let data = self
            .data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| op(a, b))
            .collect();
        record_op(
            OpKind::Elementwise,
            self.numel() as f64,
            3.0 * self.byte_size() as f64,
        );
        Tensor::from_vec(data, self.shape.clone())
    }

    /// Elementwise sum. Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference. Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product. Panics on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// `self * s` elementwise.
    pub fn scale(&self, s: f32) -> Tensor {
        record_op(
            OpKind::Elementwise,
            self.numel() as f64,
            2.0 * self.byte_size() as f64,
        );
        let data = self.data().iter().map(|&a| a * s).collect();
        Tensor::from_vec(data, self.shape.clone())
    }

    /// `self + s * other` elementwise (axpy). Panics on shape mismatch.
    pub fn add_scaled(&self, other: &Tensor, s: f32) -> Tensor {
        self.zip(other, |a, b| a + s * b)
    }

    /// Apply `f` to every element, allocating a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        record_op(
            OpKind::Elementwise,
            self.numel() as f64,
            2.0 * self.byte_size() as f64,
        );
        let data = self.data().iter().map(|&a| f(a)).collect();
        Tensor::from_vec(data, self.shape.clone())
    }

    // ------------------------------------------------------------------
    // Elementwise arithmetic (in place)
    // ------------------------------------------------------------------

    /// `self += s * other` in place. Panics on shape mismatch.
    pub fn add_scaled_assign(&mut self, other: &Tensor, s: f32) {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        record_op(
            OpKind::Elementwise,
            2.0 * self.numel() as f64,
            3.0 * self.byte_size() as f64,
        );
        // Copy-on-write makes aliasing safe: if `other` shares this storage,
        // `data_mut` un-shares it first, so `other` keeps the old values.
        let dst = self.data_mut();
        for (a, &b) in dst.iter_mut().zip(other.data()) {
            *a += s * b;
        }
    }

    /// `self += other` in place. Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        self.add_scaled_assign(other, 1.0);
    }

    /// `self *= s` in place.
    pub fn scale_assign(&mut self, s: f32) {
        record_op(
            OpKind::Elementwise,
            self.numel() as f64,
            2.0 * self.byte_size() as f64,
        );
        for a in self.data_mut() {
            *a *= s;
        }
    }

    /// Set every element to `value`.
    pub fn fill(&mut self, value: f32) {
        for a in self.data_mut() {
            *a = value;
        }
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements (f64 accumulator).
    pub fn sum(&self) -> f64 {
        record_op(OpKind::Reduce, self.numel() as f64, self.byte_size() as f64);
        self.data().iter().map(|&x| x as f64).sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        if self.numel() == 0 {
            return 0.0;
        }
        self.sum() / self.numel() as f64
    }

    /// Maximum element (`-inf` if empty).
    pub fn max(&self) -> f32 {
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element in each row of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the rank is not 2.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let (rows, cols) = self.shape.as_2d();
        let data = self.data();
        (0..rows)
            .map(|r| {
                let row = &data[r * cols..(r + 1) * cols];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Largest absolute difference to `other`. Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        self.data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Whether all elements are within `tol` of `other`'s.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape && self.max_abs_diff(other) <= tol
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Tensor) -> bool {
        self.shape == other.shape && self.data() == other.data()
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        const MAX: usize = 8;
        let d = self.data();
        if d.len() <= MAX {
            write!(f, "{d:?}")
        } else {
            write!(f, "[{:?}, ... {} more]", &d[..MAX], d.len() - MAX)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros([2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones([3]).sum(), 3.0);
        assert_eq!(Tensor::full([2], 2.5).data(), &[2.5, 2.5]);
        assert_eq!(Tensor::eye(2).data(), &[1.0, 0.0, 0.0, 1.0]);
        let t = Tensor::from_fn([3], |i| i as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_length_checked() {
        Tensor::from_vec(vec![1.0], [2, 2]);
    }

    #[test]
    fn clone_shares_then_cow() {
        let a = Tensor::ones([4]);
        let mut b = a.clone();
        assert!(a.shares_storage(&b));
        b.data_mut()[0] = 7.0;
        assert!(!a.shares_storage(&b));
        assert_eq!(a.data()[0], 1.0);
        assert_eq!(b.data()[0], 7.0);
    }

    #[test]
    fn reshape_shares_storage() {
        let a = Tensor::from_fn([2, 3], |i| i as f32);
        let b = a.reshape([3, 2]);
        assert!(a.shares_storage(&b));
        assert_eq!(b.at(&[2, 1]), 5.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], [2]);
        assert_eq!(a.add(&b).data(), &[11.0, 22.0]);
        assert_eq!(b.sub(&a).data(), &[9.0, 18.0]);
        assert_eq!(a.mul(&b).data(), &[10.0, 40.0]);
        assert_eq!(a.scale(3.0).data(), &[3.0, 6.0]);
        assert_eq!(a.add_scaled(&b, 0.5).data(), &[6.0, 12.0]);
        assert_eq!(a.map(|x| x * x).data(), &[1.0, 4.0]);
    }

    #[test]
    fn in_place_ops() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let b = Tensor::from_vec(vec![4.0, 8.0], [2]);
        a.add_scaled_assign(&b, 0.25);
        assert_eq!(a.data(), &[2.0, 4.0]);
        a.scale_assign(0.5);
        assert_eq!(a.data(), &[1.0, 2.0]);
        a.fill(9.0);
        assert_eq!(a.data(), &[9.0, 9.0]);
    }

    #[test]
    fn in_place_handles_aliased_views() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let mut b = a.reshape([2]); // aliases a
        b.add_assign(&a);
        assert_eq!(b.data(), &[2.0, 4.0]);
        assert_eq!(a.data(), &[1.0, 2.0], "original must be untouched (COW)");
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.5], [2, 2]);
        assert_eq!(t.sum(), 2.5);
        assert_eq!(t.mean(), 0.625);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.argmax_rows(), vec![0, 0]);
        let u = Tensor::from_vec(vec![-1.0, 2.0, 5.0, 0.5], [2, 2]);
        assert_eq!(u.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn allclose_and_diff() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let b = Tensor::from_vec(vec![1.05, 2.0], [2]);
        assert!((a.max_abs_diff(&b) - 0.05).abs() < 1e-6);
        assert!(a.allclose(&b, 0.1));
        assert!(!a.allclose(&b, 0.01));
    }

    #[test]
    fn memory_is_tracked() {
        use skipper_memprof as mp;
        mp::reset_all();
        let t = Tensor::zeros([1024]);
        assert_eq!(mp::snapshot().total_live(), 4096);
        let view = t.reshape([32, 32]);
        assert_eq!(mp::snapshot().total_live(), 4096, "views are free");
        let copy = t.deep_clone();
        assert_eq!(mp::snapshot().total_live(), 8192);
        drop((t, view, copy));
        assert_eq!(mp::snapshot().total_live(), 0);
    }

    #[test]
    fn debug_is_truncated() {
        let t = Tensor::zeros([100]);
        let s = format!("{t:?}");
        assert!(s.contains("more"));
        assert!(s.len() < 200);
    }

    #[test]
    fn randn_has_sane_moments() {
        let mut rng = XorShiftRng::new(42);
        let t = Tensor::randn([10_000], &mut rng);
        assert!(t.mean().abs() < 0.05);
        let var = t.map(|x| x * x).mean() - t.mean() * t.mean();
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }
}
