//! Blocked, thread-parallel matrix products.
//!
//! Three variants cover a dense layer's forward pass and both backward
//! passes without materialising transposes:
//!
//! * [`matmul`]    — `C[M,N] = A[M,K] · B[K,N]` (forward),
//! * [`matmul_nt`] — `C[M,N] = A[M,K] · B[N,K]ᵀ` (grad wrt input),
//! * [`matmul_tn`] — `C[M,N] = A[K,M]ᵀ · B[K,N]` (grad wrt weight).
//!
//! All record `2·M·N·K` FLOPs with the latency model and parallelise over
//! output-row chunks with scoped threads once the work is large enough.

use crate::tensor::Tensor;
use skipper_memprof::{record_op, OpKind};

/// Work (in multiply-adds) below which threading is not worth spawning.
const PAR_THRESHOLD: usize = 1 << 17;

/// Threads used for large products.
fn thread_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

fn record(m: usize, n: usize, k: usize) {
    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    let bytes = 4.0 * (m * k + k * n + m * n) as f64;
    record_op(OpKind::MatMul, flops, bytes);
}

/// Run `body(row_range, out_chunk)` over `m` rows of an `m x n` output,
/// splitting across threads when the total work warrants it.
fn parallel_rows(
    out: &mut [f32],
    m: usize,
    n: usize,
    work: usize,
    body: impl Fn(std::ops::Range<usize>, &mut [f32]) + Sync,
) {
    let threads = if work < PAR_THRESHOLD {
        1
    } else {
        thread_count()
    };
    if threads <= 1 || m < 2 {
        body(0..m, out);
        return;
    }
    let chunk_rows = m.div_ceil(threads);
    crossbeam::scope(|scope| {
        let mut rest = out;
        let mut row = 0;
        while row < m {
            let rows_here = chunk_rows.min(m - row);
            let (head, tail) = rest.split_at_mut(rows_here * n);
            let range = row..row + rows_here;
            let body = &body;
            scope.spawn(move |_| body(range, head));
            rest = tail;
            row += rows_here;
        }
    })
    // lint:allow(panic): join().expect re-raises a worker panic; it cannot fail otherwise
    .expect("matmul worker panicked");
}

/// `A[M,K] · B[K,N]`.
///
/// # Panics
///
/// Panics if the shapes are not rank-2 or the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape().as_2d();
    let (k2, n) = b.shape().as_2d();
    assert_eq!(k, k2, "matmul inner dims: {} vs {}", a.shape(), b.shape());
    record(m, n, k);
    let mut out = Tensor::zeros([m, n]);
    let (ad, bd) = (a.data(), b.data());
    parallel_rows(out.data_mut(), m, n, m * n * k, |rows, chunk| {
        for (ci, i) in rows.enumerate() {
            let arow = &ad[i * k..(i + 1) * k];
            let crow = &mut chunk[ci * n..(ci + 1) * n];
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue; // spikes are mostly zero: skip the row
                }
                let brow = &bd[p * n..(p + 1) * n];
                for (c, &bv) in crow.iter_mut().zip(brow) {
                    *c += av * bv;
                }
            }
        }
    });
    out
}

/// `A[M,K] · B[N,K]ᵀ`.
///
/// # Panics
///
/// Panics if the shapes are not rank-2 or the `K` dimensions disagree.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape().as_2d();
    let (n, k2) = b.shape().as_2d();
    assert_eq!(
        k,
        k2,
        "matmul_nt inner dims: {} vs {}",
        a.shape(),
        b.shape()
    );
    record(m, n, k);
    let mut out = Tensor::zeros([m, n]);
    let (ad, bd) = (a.data(), b.data());
    parallel_rows(out.data_mut(), m, n, m * n * k, |rows, chunk| {
        for (ci, i) in rows.enumerate() {
            let arow = &ad[i * k..(i + 1) * k];
            let crow = &mut chunk[ci * n..(ci + 1) * n];
            for (j, c) in crow.iter_mut().enumerate() {
                let brow = &bd[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                *c = acc;
            }
        }
    });
    out
}

/// `A[K,M]ᵀ · B[K,N]`.
///
/// # Panics
///
/// Panics if the shapes are not rank-2 or the `K` dimensions disagree.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = a.shape().as_2d();
    let (k2, n) = b.shape().as_2d();
    assert_eq!(
        k,
        k2,
        "matmul_tn inner dims: {} vs {}",
        a.shape(),
        b.shape()
    );
    record(m, n, k);
    let mut out = Tensor::zeros([m, n]);
    let (ad, bd) = (a.data(), b.data());
    parallel_rows(out.data_mut(), m, n, m * n * k, |rows, chunk| {
        for (ci, i) in rows.clone().enumerate() {
            let crow = &mut chunk[ci * n..(ci + 1) * n];
            for p in 0..k {
                let av = ad[p * m + i];
                if av == 0.0 {
                    continue;
                }
                let brow = &bd[p * n..(p + 1) * n];
                for (c, &bv) in crow.iter_mut().zip(brow) {
                    *c += av * bv;
                }
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::XorShiftRng;

    fn naive(a: &Tensor, b: &Tensor, ta: bool, tb: bool) -> Tensor {
        let (ar, ac) = a.shape().as_2d();
        let (br, bc) = b.shape().as_2d();
        let (m, k) = if ta { (ac, ar) } else { (ar, ac) };
        let (k2, n) = if tb { (bc, br) } else { (br, bc) };
        assert_eq!(k, k2);
        let mut out = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    let av = if ta { a.at(&[p, i]) } else { a.at(&[i, p]) };
                    let bv = if tb { b.at(&[j, p]) } else { b.at(&[p, j]) };
                    acc += av * bv;
                }
                out.data_mut()[i * n + j] = acc;
            }
        }
        out
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]);
        assert_eq!(matmul(&a, &b).data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = XorShiftRng::new(1);
        let a = Tensor::randn([5, 5], &mut rng);
        assert!(matmul(&a, &Tensor::eye(5)).allclose(&a, 1e-6));
        assert!(matmul(&Tensor::eye(5), &a).allclose(&a, 1e-6));
    }

    #[test]
    fn variants_match_naive_reference() {
        let mut rng = XorShiftRng::new(3);
        let a = Tensor::randn([7, 5], &mut rng);
        let b = Tensor::randn([5, 6], &mut rng);
        assert!(matmul(&a, &b).allclose(&naive(&a, &b, false, false), 1e-4));

        let bt = Tensor::randn([6, 5], &mut rng); // use as Bᵀ
        assert!(matmul_nt(&a, &bt).allclose(&naive(&a, &bt, false, true), 1e-4));

        let at = Tensor::randn([5, 7], &mut rng); // use as Aᵀ
        assert!(matmul_tn(&at, &b).allclose(&naive(&at, &b, true, false), 1e-4));
    }

    #[test]
    fn large_parallel_matches_naive() {
        let mut rng = XorShiftRng::new(11);
        let a = Tensor::randn([64, 96], &mut rng);
        let b = Tensor::randn([96, 80], &mut rng);
        assert!(matmul(&a, &b).allclose(&naive(&a, &b, false, false), 1e-3));
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn mismatched_dims_panic() {
        matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }

    #[test]
    fn flops_are_recorded() {
        skipper_memprof::take_op_log();
        let a = Tensor::ones([4, 3]);
        let b = Tensor::ones([3, 2]);
        let _ = matmul(&a, &b);
        let log = skipper_memprof::take_op_log();
        assert!(log.total_flops() >= 2.0 * 4.0 * 3.0 * 2.0);
    }
}
