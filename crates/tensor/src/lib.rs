//! Dense `f32` tensors and the CPU compute kernels used by the Skipper SNN
//! training stack.
//!
//! This crate is the lowest-level compute substrate of the reproduction of
//! *Skipper: Enabling efficient SNN training through activation-checkpointing
//! and time-skipping* (MICRO 2022). It provides:
//!
//! * [`Tensor`] — a row-major, reference-counted, copy-on-write dense `f32`
//!   tensor whose backing storage is registered with
//!   [`skipper_memprof`], so that every byte of "device" memory the
//!   training algorithms touch is accounted for exactly;
//! * [`Shape`] — a small dimension vector with the usual helpers;
//! * elementwise/reduction kernels ([`Tensor::add`], [`Tensor::scale`],
//!   [`Tensor::sum`], …);
//! * [`matmul`](fn@matmul)/[`matmul_tn`]/[`matmul_nt`] — blocked, thread-parallel
//!   matrix products (the forward and the two backward variants);
//! * [`conv2d`] and friends — im2col-based 2-D convolution with the
//!   backward-by-input and backward-by-weight kernels;
//! * [`avg_pool2d`] — average pooling forward/backward.
//!
//! Every kernel records its FLOP and byte counts with
//! [`skipper_memprof::record_op`], feeding the GPU latency model.
//!
//! # Example
//!
//! ```
//! use skipper_tensor::{matmul, Tensor};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
//! let b = Tensor::eye(2);
//! assert_eq!(matmul(&a, &b).data(), a.data());
//! ```

pub mod conv;
pub mod manip;
pub mod matmul;
pub mod pool;
pub mod random;
pub mod shape;
pub mod tensor;

pub use conv::{conv2d, conv2d_backward_input, conv2d_backward_weight, Conv2dSpec};
pub use manip::{concat0, slice0, transpose2d};
pub use matmul::{matmul, matmul_nt, matmul_tn};
pub use pool::{avg_pool2d, avg_pool2d_backward};
pub use random::XorShiftRng;
pub use shape::Shape;
pub use tensor::Tensor;
