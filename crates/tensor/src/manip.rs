//! Data-movement operations: transpose, concatenation, row slicing.
//!
//! These are not needed by the training algorithms themselves (the
//! backward kernels avoid materialising transposes), but they round out
//! the tensor API for downstream users building their own models and
//! pre-/post-processing.

use crate::tensor::Tensor;
use skipper_memprof::{record_op, OpKind};

/// Transpose a rank-2 tensor.
///
/// # Panics
///
/// Panics if the rank is not 2.
pub fn transpose2d(t: &Tensor) -> Tensor {
    let (rows, cols) = t.shape().as_2d();
    record_op(OpKind::Copy, 0.0, 2.0 * t.byte_size() as f64);
    let src = t.data();
    let mut out = Tensor::zeros([cols, rows]);
    {
        let dst = out.data_mut();
        for r in 0..rows {
            for c in 0..cols {
                dst[c * rows + r] = src[r * cols + c];
            }
        }
    }
    out
}

/// Concatenate tensors along axis 0. All trailing dimensions must agree.
///
/// # Panics
///
/// Panics if `parts` is empty or shapes are incompatible.
pub fn concat0(parts: &[&Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "concat of nothing");
    let first = parts[0].shape().dims();
    assert!(!first.is_empty(), "concat needs rank ≥ 1");
    let tail = &first[1..];
    let mut rows = 0usize;
    for p in parts {
        let dims = p.shape().dims();
        assert_eq!(&dims[1..], tail, "trailing dimensions must agree");
        rows += dims[0];
    }
    let total: usize = rows * tail.iter().product::<usize>().max(1);
    record_op(OpKind::Copy, 0.0, (total * 8) as f64);
    let mut data = Vec::with_capacity(total);
    for p in parts {
        data.extend_from_slice(p.data());
    }
    let mut dims = vec![rows];
    dims.extend_from_slice(tail);
    Tensor::from_vec(data, dims)
}

/// Copy rows `range` of the leading axis into a new tensor.
///
/// # Panics
///
/// Panics if the range exceeds the leading dimension.
pub fn slice0(t: &Tensor, range: std::ops::Range<usize>) -> Tensor {
    let dims = t.shape().dims();
    assert!(!dims.is_empty(), "slice needs rank ≥ 1");
    assert!(
        range.end <= dims[0] && range.start <= range.end,
        "range {range:?} out of bounds for leading dim {}",
        dims[0]
    );
    let stride: usize = dims[1..].iter().product::<usize>().max(1);
    record_op(OpKind::Copy, 0.0, ((range.len() * stride) * 8) as f64);
    let data = t.data()[range.start * stride..range.end * stride].to_vec();
    let mut out_dims = vec![range.len()];
    out_dims.extend_from_slice(&dims[1..]);
    Tensor::from_vec(data, out_dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::XorShiftRng;

    #[test]
    fn transpose_known_and_involutive() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let tt = transpose2d(&t);
        assert_eq!(tt.shape().dims(), &[3, 2]);
        assert_eq!(tt.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(transpose2d(&tt), t);
    }

    #[test]
    fn transpose_consistent_with_matmul_variants() {
        use crate::matmul::{matmul, matmul_tn};
        let mut rng = XorShiftRng::new(2);
        let a = Tensor::randn([4, 3], &mut rng);
        let b = Tensor::randn([4, 5], &mut rng);
        // aᵀ·b computed two ways.
        let via_tn = matmul_tn(&a, &b);
        let via_transpose = matmul(&transpose2d(&a), &b);
        assert!(via_tn.allclose(&via_transpose, 1e-4));
    }

    #[test]
    fn concat_stacks_batches() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [1, 2]);
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], [2, 2]);
        let c = concat0(&[&a, &b]);
        assert_eq!(c.shape().dims(), &[3, 2]);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "trailing dimensions")]
    fn concat_checks_shapes() {
        let a = Tensor::zeros([1, 2]);
        let b = Tensor::zeros([1, 3]);
        concat0(&[&a, &b]);
    }

    #[test]
    fn slice_extracts_rows() {
        let t = Tensor::from_fn([4, 2], |i| i as f32);
        let s = slice0(&t, 1..3);
        assert_eq!(s.shape().dims(), &[2, 2]);
        assert_eq!(s.data(), &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(slice0(&t, 0..0).numel(), 0);
    }

    #[test]
    fn slice_concat_roundtrip() {
        let mut rng = XorShiftRng::new(3);
        let t = Tensor::randn([5, 3, 2], &mut rng);
        let a = slice0(&t, 0..2);
        let b = slice0(&t, 2..5);
        assert_eq!(concat0(&[&a, &b]), t);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_checks_bounds() {
        slice0(&Tensor::zeros([2, 2]), 1..4);
    }
}
