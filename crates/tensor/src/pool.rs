//! Average pooling (the pooling used by spiking CNNs, where max-pooling is
//! ill-defined on binary spike trains).

use crate::tensor::Tensor;
use skipper_memprof::{record_op, OpKind};

/// Average-pool `input [B,C,H,W]` with a `k x k` window and stride `k`
/// (non-overlapping, the configuration used by all networks in the paper).
///
/// # Panics
///
/// Panics if `k` is zero or does not divide the spatial dimensions.
pub fn avg_pool2d(input: &Tensor, k: usize) -> Tensor {
    assert!(k > 0, "pool window must be positive");
    let (b, c, h, w) = input.shape().as_4d();
    assert!(
        h % k == 0 && w % k == 0,
        "pool window {k} must divide {h}x{w}"
    );
    let (ho, wo) = (h / k, w / k);
    record_op(
        OpKind::Pool,
        input.numel() as f64,
        (input.numel() + b * c * ho * wo) as f64 * 4.0,
    );
    let mut out = Tensor::zeros([b, c, ho, wo]);
    let inv = 1.0 / (k * k) as f32;
    let src = input.data();
    let dst = out.data_mut();
    for bc in 0..b * c {
        let plane = &src[bc * h * w..(bc + 1) * h * w];
        let dst_plane = &mut dst[bc * ho * wo..(bc + 1) * ho * wo];
        for oh in 0..ho {
            for ow in 0..wo {
                let mut acc = 0.0f32;
                for i in 0..k {
                    let row = &plane[(oh * k + i) * w + ow * k..];
                    for &v in &row[..k] {
                        acc += v;
                    }
                }
                dst_plane[oh * wo + ow] = acc * inv;
            }
        }
    }
    out
}

/// Gradient of [`avg_pool2d`]: spreads each output gradient uniformly over
/// its `k x k` window.
///
/// # Panics
///
/// Panics if `grad_output`'s shape is not `input_shape` pooled by `k`.
pub fn avg_pool2d_backward(grad_output: &Tensor, input_shape: &[usize], k: usize) -> Tensor {
    assert_eq!(input_shape.len(), 4, "input shape must be rank 4");
    let (b, c, h, w) = (
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    );
    let (ho, wo) = (h / k, w / k);
    assert_eq!(
        grad_output.shape().dims(),
        &[b, c, ho, wo],
        "grad_output shape mismatch"
    );
    record_op(
        OpKind::Pool,
        grad_output.numel() as f64 * (k * k) as f64,
        (b * c * h * w + grad_output.numel()) as f64 * 4.0,
    );
    let mut out = Tensor::zeros([b, c, h, w]);
    let inv = 1.0 / (k * k) as f32;
    let src = grad_output.data();
    let dst = out.data_mut();
    for bc in 0..b * c {
        let src_plane = &src[bc * ho * wo..(bc + 1) * ho * wo];
        let dst_plane = &mut dst[bc * h * w..(bc + 1) * h * w];
        for oh in 0..ho {
            for ow in 0..wo {
                let g = src_plane[oh * wo + ow] * inv;
                for i in 0..k {
                    let row = &mut dst_plane[(oh * k + i) * w + ow * k..];
                    for v in &mut row[..k] {
                        *v = g;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::XorShiftRng;

    #[test]
    fn known_2x2_pool() {
        let input = Tensor::from_vec((1..=16).map(|i| i as f32).collect(), [1, 1, 4, 4]);
        let out = avg_pool2d(&input, 2);
        assert_eq!(out.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn pool_of_constant_is_constant() {
        let input = Tensor::full([2, 3, 6, 6], 2.5);
        let out = avg_pool2d(&input, 3);
        assert!(out.allclose(&Tensor::full([2, 3, 2, 2], 2.5), 1e-6));
    }

    #[test]
    fn backward_distributes_uniformly() {
        let go = Tensor::from_vec(vec![4.0], [1, 1, 1, 1]);
        let gi = avg_pool2d_backward(&go, &[1, 1, 2, 2], 2);
        assert_eq!(gi.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = XorShiftRng::new(8);
        let input = Tensor::randn([1, 2, 4, 4], &mut rng);
        let go = Tensor::randn([1, 2, 2, 2], &mut rng);
        let gi = avg_pool2d_backward(&go, input.shape().dims(), 2);
        let f = |x: &Tensor| -> f64 {
            avg_pool2d(x, 2)
                .data()
                .iter()
                .zip(go.data())
                .map(|(&o, &g)| (o * g) as f64)
                .sum()
        };
        let eps = 1e-2f32;
        for probe in [0usize, 5, 21, 31] {
            let mut plus = input.deep_clone();
            plus.data_mut()[probe] += eps;
            let mut minus = input.deep_clone();
            minus.data_mut()[probe] -= eps;
            let num = ((f(&plus) - f(&minus)) / (2.0 * eps as f64)) as f32;
            assert!((num - gi.data()[probe]).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn window_must_divide_input() {
        avg_pool2d(&Tensor::zeros([1, 1, 5, 5]), 2);
    }
}
