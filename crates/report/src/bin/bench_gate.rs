//! The perf-regression gate: diff fresh `BENCH_<name>.json` manifests
//! against the committed baselines and fail on regressions.
//!
//! ```text
//! bench_gate [--baseline-dir results/baselines] [--current-dir results]
//!            [--threshold 50] [--memory-threshold 25] [name ...]
//! ```
//!
//! With no names, every `BENCH_*.json` in the baseline directory is
//! gated; a baseline without a matching current manifest is itself a
//! failure (the bench silently stopped emitting). Exit code 1 on any
//! violation, 2 on usage/IO errors.

use skipper_report::{compare, GateConfig, RunManifest};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    baseline_dir: PathBuf,
    current_dir: PathBuf,
    cfg: GateConfig,
    names: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline_dir: skipper_report::baselines_dir(),
        current_dir: skipper_report::results_dir(),
        cfg: GateConfig::default(),
        names: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--baseline-dir" => args.baseline_dir = PathBuf::from(value("--baseline-dir")?),
            "--current-dir" => args.current_dir = PathBuf::from(value("--current-dir")?),
            "--threshold" => {
                args.cfg.max_slowdown_pct = value("--threshold")?
                    .parse()
                    .map_err(|e| format!("--threshold: {e}"))?
            }
            "--memory-threshold" => {
                args.cfg.max_memory_growth_pct = value("--memory-threshold")?
                    .parse()
                    .map_err(|e| format!("--memory-threshold: {e}"))?
            }
            "--help" | "-h" => {
                return Err(
                    "usage: bench_gate [--baseline-dir DIR] [--current-dir DIR] \
                     [--threshold PCT] [--memory-threshold PCT] [name ...]"
                        .to_string(),
                )
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            name => args.names.push(name.to_string()),
        }
    }
    Ok(args)
}

/// Bench names (the `<name>` of `BENCH_<name>.json`) present in `dir`.
fn manifest_names(dir: &PathBuf) -> std::io::Result<Vec<String>> {
    let mut names = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let file = entry?.file_name();
        let file = file.to_string_lossy();
        if let Some(name) = file
            .strip_prefix("BENCH_")
            .and_then(|rest| rest.strip_suffix(".json"))
        {
            names.push(name.to_string());
        }
    }
    names.sort();
    Ok(names)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let names = if args.names.is_empty() {
        match manifest_names(&args.baseline_dir) {
            Ok(names) => names,
            Err(err) => {
                eprintln!(
                    "bench_gate: cannot read baseline dir {}: {err}",
                    args.baseline_dir.display()
                );
                return ExitCode::from(2);
            }
        }
    } else {
        args.names.clone()
    };
    if names.is_empty() {
        eprintln!(
            "bench_gate: no BENCH_*.json baselines in {}",
            args.baseline_dir.display()
        );
        return ExitCode::from(2);
    }
    println!(
        "bench_gate: {} baseline(s) from {}, thresholds wall/iter +{:.0}% mem +{:.0}%",
        names.len(),
        args.baseline_dir.display(),
        args.cfg.max_slowdown_pct,
        args.cfg.max_memory_growth_pct,
    );
    let mut failures = 0usize;
    for name in &names {
        let file = format!("BENCH_{name}.json");
        let baseline = match RunManifest::load(&args.baseline_dir.join(&file)) {
            Ok(m) => m,
            Err(err) => {
                eprintln!("  FAIL {name}: cannot load baseline: {err}");
                failures += 1;
                continue;
            }
        };
        let current = match RunManifest::load(&args.current_dir.join(&file)) {
            Ok(m) => m,
            Err(err) => {
                eprintln!(
                    "  FAIL {name}: no current manifest in {} ({err})",
                    args.current_dir.display()
                );
                failures += 1;
                continue;
            }
        };
        let regressions = compare(&baseline, &current, &args.cfg);
        if regressions.is_empty() {
            let delta = if baseline.wall_s > 0.0 {
                (current.wall_s - baseline.wall_s) / baseline.wall_s * 100.0
            } else {
                0.0
            };
            println!(
                "  ok   {name}: wall {:.2}s vs {:.2}s ({delta:+.1}%)",
                current.wall_s, baseline.wall_s
            );
        } else {
            failures += 1;
            eprintln!("  FAIL {name}:");
            for r in &regressions {
                eprintln!("       {r}");
            }
        }
    }
    if failures > 0 {
        eprintln!(
            "bench_gate: {failures} of {} benches regressed",
            names.len()
        );
        ExitCode::FAILURE
    } else {
        println!("bench_gate: all {} benches within thresholds", names.len());
        ExitCode::SUCCESS
    }
}
