//! `trace_stitch`: merge per-process obs JSONL streams into one
//! Perfetto-loadable Chrome trace.
//!
//! ```text
//! trace_stitch [--out PATH] FILE.jsonl...
//! trace_stitch                # stitch results/obs_*.jsonl
//! ```
//!
//! Defaults: inputs are every `obs_*.jsonl` under `results/`, output is
//! `results/cluster_trace.json`. Exits non-zero on unreadable inputs or
//! when nothing was stitched.

use skipper_report::stitch::stitch_files;
use std::path::PathBuf;

fn default_inputs(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let name = e.file_name().to_string_lossy().into_owned();
            if name.starts_with("obs_") && name.ends_with(".jsonl") {
                found.push(e.path());
            }
        }
    }
    found.sort();
    found
}

fn main() {
    let mut out: Option<PathBuf> = None;
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => match args.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("trace_stitch: --out requires a path");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: trace_stitch [--out PATH] FILE.jsonl...");
                return;
            }
            _ => inputs.push(PathBuf::from(a)),
        }
    }
    let results = skipper_report::results_dir();
    if inputs.is_empty() {
        inputs = default_inputs(&results);
        if inputs.is_empty() {
            eprintln!(
                "trace_stitch: no inputs given and no obs_*.jsonl under {}",
                results.display()
            );
            std::process::exit(1);
        }
    }
    let out = out.unwrap_or_else(|| results.join("cluster_trace.json"));
    match stitch_files(&inputs) {
        Ok(stitched) => {
            if let Some(parent) = out.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            if let Err(e) = std::fs::write(&out, &stitched.chrome_json) {
                eprintln!("trace_stitch: cannot write {}: {e}", out.display());
                std::process::exit(1);
            }
            let s = stitched.stats;
            println!(
                "trace_stitch: {} -> {} ({} processes, {} spans, \
                 {}/{} worker_task spans under iteration, {} cross-process \
                 links, {} dropped lines)",
                inputs.len(),
                out.display(),
                s.processes,
                s.spans,
                s.nested_under_iteration,
                s.worker_tasks,
                s.cross_process_links,
                s.dropped_lines,
            );
        }
        Err(e) => {
            eprintln!("trace_stitch: {e}");
            std::process::exit(1);
        }
    }
}
