//! `skipper-report`: machine-readable benchmark run manifests and the
//! regression gate that compares them.
//!
//! Every bench binary ends its run by collecting a [`RunManifest`] from
//! the global `skipper-obs` registry — wall time, iteration latency
//! percentiles, peak memory, skip/recompute counters, per-worker
//! utilization, git revision — and saving it as
//! `results/BENCH_<name>.json`. The `bench_gate` binary then diffs a
//! fresh manifest against a committed baseline under `results/baselines/`
//! and exits non-zero when a metric regressed past its threshold, giving
//! CI an enforced perf trajectory instead of a pile of prose claims.

use serde::{Deserialize, Serialize};
use skipper_obs::MetricsSnapshot;
use std::path::{Path, PathBuf};

pub mod stitch;

/// Latency aggregate of the `iteration.wall_us` histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationStats {
    /// Training iterations observed.
    pub count: u64,
    /// Mean iteration wall time, microseconds.
    pub mean_us: f64,
    /// Median iteration wall time, microseconds (bucket-interpolated).
    pub p50_us: f64,
    /// 95th-percentile iteration wall time, microseconds.
    pub p95_us: f64,
    /// 99th-percentile iteration wall time, microseconds.
    pub p99_us: f64,
}

/// SLO burn rates at run end, read from the gateway's
/// `serve.slo_burn_rate{window}` gauges. A burn of 1.0 means the run
/// spent its error budget exactly as fast as the SLO allows; the gate
/// fails any run that ends at or above 1.0 — an absolute check, not a
/// baseline-relative one, because "out of budget" is bad no matter what
/// the previous run did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloStats {
    /// Short-window burn rate at exit.
    pub short_burn: f64,
    /// Long-window burn rate at exit.
    pub long_burn: f64,
}

/// One benchmark run, summarized. Serialized as `BENCH_<name>.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Bench binary name (the `<name>` in the file name).
    pub name: String,
    /// `git rev-parse HEAD` equivalent, read from `.git` directly
    /// (`"unknown"` outside a repository).
    pub git_rev: String,
    /// Whether the run used `--quick` (reduced workload — not comparable
    /// to a full run).
    pub quick: bool,
    /// Worker threads the session was configured with.
    pub workers: usize,
    /// End-to-end wall time of the binary, seconds.
    pub wall_s: f64,
    /// Iteration latency stats, when the run trained at least once.
    pub iteration: Option<IterationStats>,
    /// Serving request latency stats (`serve.request_wall_us`), when the
    /// run answered gateway traffic. Absent in older manifests and
    /// training-only runs — the vendored deserializer maps a missing
    /// field to `None`, so committed baselines stay loadable.
    pub request: Option<IterationStats>,
    /// SLO burn rates at exit, when the run hosted a gateway with the
    /// burn-rate engine on. Absent in older manifests — missing fields
    /// deserialize to `None`, so committed baselines stay loadable.
    pub slo: Option<SloStats>,
    /// Peak tracked memory over the run, bytes
    /// (`memprof.peak_bytes{category=total}`; 0 when not recorded).
    pub peak_bytes: f64,
    /// Total timesteps skipped (Skipper time-skipping).
    pub steps_skipped: f64,
    /// Total timesteps recomputed.
    pub steps_recomputed: f64,
    /// `skipped / (skipped + recomputed)`, the paper's headline recompute
    /// saving (0 when neither counter moved).
    pub skip_ratio: f64,
    /// `engine.worker_utilization{worker=i}` in worker order (empty for
    /// single-threaded runs).
    pub worker_utilization: Vec<f64>,
    /// Every registry counter at exit, sorted by key.
    pub counters: Vec<(String, f64)>,
    /// Every registry gauge at exit, sorted by key.
    pub gauges: Vec<(String, f64)>,
}

fn lookup(pairs: &[(String, f64)], key: &str) -> Option<f64> {
    pairs.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
}

impl RunManifest {
    /// Build a manifest from the **global** registry. `wall_s` is the
    /// binary's measured wall time; `quick` mirrors its `--quick` flag.
    pub fn collect(name: &str, wall_s: f64, quick: bool, workers: usize) -> RunManifest {
        RunManifest::from_snapshot(
            name,
            wall_s,
            quick,
            workers,
            &skipper_obs::registry().snapshot(),
        )
    }

    /// Build a manifest from an explicit snapshot (testable without global
    /// state).
    pub fn from_snapshot(
        name: &str,
        wall_s: f64,
        quick: bool,
        workers: usize,
        snap: &MetricsSnapshot,
    ) -> RunManifest {
        let latency_stats = |name: &str| {
            snap.histograms
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, h)| IterationStats {
                    count: h.count(),
                    mean_us: h.mean(),
                    p50_us: h.quantile(0.50),
                    p95_us: h.quantile(0.95),
                    p99_us: h.quantile(0.99),
                })
        };
        let iteration = latency_stats("iteration.wall_us");
        let request = latency_stats("serve.request_wall_us");
        let slo = match (
            lookup(&snap.gauges, "serve.slo_burn_rate{window=short}"),
            lookup(&snap.gauges, "serve.slo_burn_rate{window=long}"),
        ) {
            (Some(short_burn), Some(long_burn)) => Some(SloStats {
                short_burn,
                long_burn,
            }),
            _ => None,
        };
        let peak_bytes = lookup(&snap.gauges, "memprof.peak_bytes{category=total}")
            .or_else(|| {
                snap.gauges
                    .iter()
                    .filter(|(k, _)| k.starts_with("memprof.peak_bytes"))
                    .map(|&(_, v)| v)
                    .fold(None, |acc: Option<f64>, v| {
                        Some(acc.map_or(v, |a| a.max(v)))
                    })
            })
            .unwrap_or(0.0);
        let steps_skipped = lookup(&snap.counters, "skipper.steps_skipped").unwrap_or(0.0);
        let steps_recomputed = lookup(&snap.counters, "skipper.steps_recomputed").unwrap_or(0.0);
        let denominator = steps_skipped + steps_recomputed;
        let skip_ratio = if denominator > 0.0 {
            steps_skipped / denominator
        } else {
            0.0
        };
        // Single-threaded sessions never start the pool; absent gauges are
        // omitted rather than reported as zero utilization.
        let worker_utilization: Vec<f64> = (0..workers)
            .filter_map(|w| {
                lookup(
                    &snap.gauges,
                    &skipper_obs::labeled("engine.worker_utilization", "worker", w),
                )
            })
            .collect();
        RunManifest {
            name: name.to_string(),
            git_rev: git_rev(),
            quick,
            workers,
            wall_s,
            iteration,
            request,
            slo,
            peak_bytes,
            steps_skipped,
            steps_recomputed,
            skip_ratio,
            worker_utilization,
            counters: snap.counters.clone(),
            gauges: snap.gauges.clone(),
        }
    }

    /// The manifest's canonical file name, `BENCH_<name>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.name)
    }

    /// Serialize into `dir/BENCH_<name>.json` (pretty-printed), creating
    /// `dir` if needed.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation, serialization and write errors.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e:?}")))?;
        std::fs::write(&path, json + "\n")?;
        Ok(path)
    }

    /// Load a manifest from `path`.
    ///
    /// # Errors
    ///
    /// Propagates read errors; malformed JSON maps to `InvalidData`.
    pub fn load(path: &Path) -> std::io::Result<RunManifest> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: {e:?}", path.display()),
            )
        })
    }
}

/// Resolve the current git commit hash without invoking `git`: follow
/// `.git/HEAD` (and `packed-refs` for packed branches), walking up from
/// the crate root and the current directory. Returns `"unknown"` when no
/// repository is found.
pub fn git_rev() -> String {
    let mut starts: Vec<PathBuf> = Vec::new();
    if let Ok(dir) = std::env::current_dir() {
        starts.push(dir);
    }
    starts.push(PathBuf::from(env!("CARGO_MANIFEST_DIR")));
    for start in starts {
        let mut dir = Some(start.as_path());
        while let Some(d) = dir {
            let git = d.join(".git");
            if git.is_dir() {
                if let Some(rev) = rev_from_git_dir(&git) {
                    return rev;
                }
            }
            dir = d.parent();
        }
    }
    "unknown".to_string()
}

fn rev_from_git_dir(git: &Path) -> Option<String> {
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    let Some(reference) = head.strip_prefix("ref: ") else {
        // Detached HEAD: the hash itself.
        return (head.len() >= 40).then(|| head.to_string());
    };
    if let Ok(hash) = std::fs::read_to_string(git.join(reference)) {
        return Some(hash.trim().to_string());
    }
    let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
    packed
        .lines()
        .filter(|l| !l.starts_with('#') && !l.starts_with('^'))
        .find_map(|l| {
            let (hash, name) = l.split_once(' ')?;
            (name == reference).then(|| hash.to_string())
        })
}

/// Thresholds for [`compare`]. Percentages are relative growth over the
/// baseline: 50.0 means "fail if the metric got more than 50 % worse".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    /// Allowed growth in wall time and iteration latency, percent.
    pub max_slowdown_pct: f64,
    /// Allowed growth in peak memory, percent.
    pub max_memory_growth_pct: f64,
}

impl Default for GateConfig {
    fn default() -> GateConfig {
        GateConfig {
            // Wall times on shared CI runners are noisy; the gate is a
            // backstop against order-of-magnitude regressions, not a
            // micro-benchmark.
            max_slowdown_pct: 50.0,
            max_memory_growth_pct: 25.0,
        }
    }
}

/// One gate violation: `metric` got `change_pct` worse than the baseline,
/// past its `limit_pct`.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Which metric regressed (e.g. `wall_s`, `iteration.p95_us`).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Relative growth, percent (positive = worse).
    pub change_pct: f64,
    /// The threshold it violated, percent.
    pub limit_pct: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.4} -> {:.4} ({:+.1}% > {:.0}% allowed)",
            self.metric, self.baseline, self.current, self.change_pct, self.limit_pct
        )
    }
}

fn check(out: &mut Vec<Regression>, metric: &str, baseline: f64, current: f64, limit_pct: f64) {
    // A zero/absent (or NaN) baseline can't express a relative threshold;
    // skip it rather than dividing by zero.
    if !baseline.is_finite() || baseline <= 0.0 || !current.is_finite() {
        return;
    }
    let change_pct = (current - baseline) / baseline * 100.0;
    if change_pct > limit_pct {
        out.push(Regression {
            metric: metric.to_string(),
            baseline,
            current,
            change_pct,
            limit_pct,
        });
    }
}

fn check_latency(
    out: &mut Vec<Regression>,
    prefix: &str,
    baseline: &Option<IterationStats>,
    current: &Option<IterationStats>,
    limit_pct: f64,
) {
    let (Some(b), Some(c)) = (baseline, current) else {
        return;
    };
    check(
        out,
        &format!("{prefix}.mean_us"),
        b.mean_us,
        c.mean_us,
        limit_pct,
    );
    check(
        out,
        &format!("{prefix}.p50_us"),
        b.p50_us,
        c.p50_us,
        limit_pct,
    );
    check(
        out,
        &format!("{prefix}.p95_us"),
        b.p95_us,
        c.p95_us,
        limit_pct,
    );
    check(
        out,
        &format!("{prefix}.p99_us"),
        b.p99_us,
        c.p99_us,
        limit_pct,
    );
}

/// Diff `current` against `baseline` under `cfg`, returning every metric
/// that regressed (empty = gate passes). Higher is worse for every gated
/// metric; improvements never fail the gate.
pub fn compare(baseline: &RunManifest, current: &RunManifest, cfg: &GateConfig) -> Vec<Regression> {
    let mut out = Vec::new();
    if baseline.quick != current.quick {
        // Different workloads — any timing diff would be meaningless, and
        // silently passing would hide a misconfigured CI job.
        out.push(Regression {
            metric: "quick-flag mismatch (baseline vs current workload)".to_string(),
            baseline: baseline.quick as u64 as f64,
            current: current.quick as u64 as f64,
            change_pct: f64::INFINITY,
            limit_pct: 0.0,
        });
        return out;
    }
    check(
        &mut out,
        "wall_s",
        baseline.wall_s,
        current.wall_s,
        cfg.max_slowdown_pct,
    );
    check_latency(
        &mut out,
        "iteration",
        &baseline.iteration,
        &current.iteration,
        cfg.max_slowdown_pct,
    );
    check_latency(
        &mut out,
        "request",
        &baseline.request,
        &current.request,
        cfg.max_slowdown_pct,
    );
    check(
        &mut out,
        "peak_bytes",
        baseline.peak_bytes,
        current.peak_bytes,
        cfg.max_memory_growth_pct,
    );
    // SLO compliance is absolute, not baseline-relative: a run that ends
    // with a burn rate at or above 1.0 spent its error budget faster than
    // the SLO allows, which is a failure even if the baseline was worse.
    if let Some(slo) = &current.slo {
        for (window, burn) in [("short", slo.short_burn), ("long", slo.long_burn)] {
            if burn >= 1.0 {
                out.push(Regression {
                    metric: format!("slo.burn_rate{{window={window}}} (absolute, must be < 1)"),
                    baseline: baseline.slo.as_ref().map_or(0.0, |b| {
                        if window == "short" {
                            b.short_burn
                        } else {
                            b.long_burn
                        }
                    }),
                    current: burn,
                    change_pct: f64::INFINITY,
                    limit_pct: 0.0,
                });
            }
        }
    }
    out
}

/// The workspace `results/` directory (`<repo>/results`), resolved from
/// this crate's position in the source tree.
pub fn results_dir() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .unwrap_or(manifest)
        .join("results")
}

/// The committed-baselines directory, `results/baselines/`.
pub fn baselines_dir() -> PathBuf {
    results_dir().join("baselines")
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper_obs::Registry;

    fn snapshot_with(iter_walls: &[f64]) -> MetricsSnapshot {
        let r = Registry::new();
        r.counter_add("skipper.steps_skipped", 30.0);
        r.counter_add("skipper.steps_recomputed", 70.0);
        r.gauge_set("memprof.peak_bytes{category=total}", 1_000_000.0);
        r.gauge_set("engine.worker_utilization{worker=0}", 0.9);
        r.gauge_set("engine.worker_utilization{worker=1}", 0.8);
        for &w in iter_walls {
            r.observe("iteration.wall_us", w);
        }
        r.snapshot()
    }

    #[test]
    fn manifest_derives_ratios_and_percentiles() {
        let m = RunManifest::from_snapshot("t", 1.5, false, 2, &snapshot_with(&[100.0; 8]));
        assert_eq!(m.name, "t");
        assert_eq!(m.wall_s, 1.5);
        assert!((m.skip_ratio - 0.3).abs() < 1e-12);
        assert_eq!(m.peak_bytes, 1_000_000.0);
        assert_eq!(m.worker_utilization, vec![0.9, 0.8]);
        let iter = m.iteration.expect("iteration histogram present");
        assert_eq!(iter.count, 8);
        assert!((iter.mean_us - 100.0).abs() < 1e-9);
        assert!(iter.p95_us > 0.0);
        assert!(
            m.request.is_none(),
            "training run records no request latency"
        );
    }

    #[test]
    fn manifest_derives_request_latency_and_gate_flags_its_regressions() {
        let snapshot = |walls: &[f64]| {
            let r = Registry::new();
            for &w in walls {
                r.observe("serve.request_wall_us", w);
            }
            r.snapshot()
        };
        let base = RunManifest::from_snapshot("srv", 1.0, false, 1, &snapshot(&[200.0; 8]));
        let req = base.request.as_ref().expect("request histogram present");
        assert_eq!(req.count, 8);
        assert!((req.mean_us - 200.0).abs() < 1e-9);
        assert!(
            base.iteration.is_none(),
            "serving run records no iterations"
        );

        // A manifest serialized before the field existed still loads.
        let legacy: RunManifest = serde_json::from_str(
            &serde_json::to_string(&base)
                .unwrap()
                .replace("\"request\":", "\"request_unknown\":"),
        )
        .expect("missing request field deserializes");
        assert!(legacy.request.is_none());

        let slow = RunManifest::from_snapshot("srv", 1.0, false, 1, &snapshot(&[900.0; 8]));
        let regressions = compare(&base, &slow, &GateConfig::default());
        assert!(regressions.iter().any(|r| r.metric.starts_with("request.")));
        assert!(compare(&base, &base, &GateConfig::default()).is_empty());
    }

    #[test]
    fn manifest_captures_slo_burn_and_gate_fails_budget_breaches_absolutely() {
        let snapshot = |short: f64, long: f64| {
            let r = Registry::new();
            r.observe("serve.request_wall_us", 200.0);
            r.gauge_set("serve.slo_burn_rate{window=short}", short);
            r.gauge_set("serve.slo_burn_rate{window=long}", long);
            r.snapshot()
        };
        let healthy = RunManifest::from_snapshot("slo", 1.0, false, 1, &snapshot(0.2, 0.1));
        let slo = healthy.slo.as_ref().expect("burn gauges present");
        assert_eq!(slo.short_burn, 0.2);
        assert_eq!(slo.long_burn, 0.1);
        assert!(
            compare(&healthy, &healthy, &GateConfig::default()).is_empty(),
            "burn below 1 passes"
        );

        // A breaching run fails the gate even against itself — the check
        // is absolute (this is the "injected latency breaches the p99
        // SLO" contract bench_gate enforces via compare()).
        let breaching = RunManifest::from_snapshot("slo", 1.0, false, 1, &snapshot(3.2, 0.4));
        let regressions = compare(&healthy, &breaching, &GateConfig::default());
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0]
            .metric
            .contains("slo.burn_rate{window=short}"));
        let both = RunManifest::from_snapshot("slo", 1.0, false, 1, &snapshot(3.2, 1.4));
        assert_eq!(compare(&healthy, &both, &GateConfig::default()).len(), 2);

        // A manifest serialized before the field existed still loads.
        let legacy: RunManifest = serde_json::from_str(
            &serde_json::to_string(&healthy)
                .unwrap()
                .replace("\"slo\":", "\"slo_unknown\":"),
        )
        .expect("missing slo field deserializes");
        assert!(legacy.slo.is_none());
        assert!(
            compare(&healthy, &legacy, &GateConfig::default()).is_empty(),
            "runs without an SLO engine are not gated on burn"
        );
    }

    #[test]
    fn manifest_without_training_has_no_iteration_stats() {
        let m = RunManifest::from_snapshot("t", 0.1, true, 1, &MetricsSnapshot::default());
        assert!(m.iteration.is_none());
        assert_eq!(m.skip_ratio, 0.0);
        assert_eq!(m.peak_bytes, 0.0);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("skipper_report_{}", std::process::id()));
        let m = RunManifest::from_snapshot("roundtrip", 2.0, false, 2, &snapshot_with(&[50.0]));
        let path = m.save(&dir).unwrap();
        assert!(path.ends_with("BENCH_roundtrip.json"));
        let loaded = RunManifest::load(&path).unwrap();
        assert_eq!(loaded, m);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gate_flags_synthetic_slowdown_and_passes_identical_runs() {
        let base = RunManifest::from_snapshot("g", 1.0, false, 2, &snapshot_with(&[100.0; 4]));
        let same = compare(&base, &base, &GateConfig::default());
        assert!(same.is_empty(), "identical runs must pass: {same:?}");

        // Synthetically slowed run: 3x wall, 3x iteration latency.
        let slow = RunManifest::from_snapshot("g", 3.0, false, 2, &snapshot_with(&[300.0; 4]));
        let regressions = compare(&base, &slow, &GateConfig::default());
        assert!(!regressions.is_empty());
        assert!(regressions.iter().any(|r| r.metric == "wall_s"));
        assert!(regressions
            .iter()
            .any(|r| r.metric.starts_with("iteration.")));

        // An improvement never fails the gate.
        let fast = RunManifest::from_snapshot("g", 0.5, false, 2, &snapshot_with(&[50.0; 4]));
        assert!(compare(&base, &fast, &GateConfig::default()).is_empty());
    }

    #[test]
    fn gate_rejects_quick_vs_full_comparison() {
        let base = RunManifest::from_snapshot("q", 1.0, false, 1, &MetricsSnapshot::default());
        let quick = RunManifest::from_snapshot("q", 0.1, true, 1, &MetricsSnapshot::default());
        let regressions = compare(&base, &quick, &GateConfig::default());
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].metric.contains("quick"));
    }

    #[test]
    fn git_rev_resolves_inside_this_repo() {
        let rev = git_rev();
        assert_eq!(rev.len(), 40, "expected a 40-char sha, got {rev:?}");
        assert!(rev.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn zero_baseline_metrics_are_skipped() {
        let mut base = RunManifest::from_snapshot("z", 0.0, false, 1, &MetricsSnapshot::default());
        base.peak_bytes = 0.0;
        let mut cur = base.clone();
        cur.wall_s = 100.0;
        cur.peak_bytes = 1e9;
        assert!(compare(&base, &cur, &GateConfig::default()).is_empty());
    }
}
