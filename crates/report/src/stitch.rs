//! Cross-process trace stitching: merge per-process obs JSONL streams
//! into one Chrome/Perfetto trace.
//!
//! A distributed run produces one JSONL event stream per process — the
//! coordinator's (carrying the `iteration` spans) plus one per
//! `skipper_worker` (captured via `SKIPPER_OBS_JSONL`). Each stream has
//! its own clock epoch ([`skipper_obs::now_us`] counts from process
//! start) and its own span-id space. Stitching:
//!
//! 1. picks the coordinator stream (the one containing `iteration`
//!    spans) as pid 1 and the time reference;
//! 2. shifts every worker stream by the clock offset its
//!    `cluster.clock_sync` event reported (estimated NTP-style during the
//!    Hello/Welcome handshake, so worker timestamps land on the
//!    coordinator's axis);
//! 3. emits one Chrome-trace JSON with per-process `process_name`
//!    metadata, `B`/`E` span events carrying `span`/`parent` ids in
//!    `args`, and flow arrows (`s`/`f`) wherever a span's parent lives in
//!    another process — the `worker_task → iteration` dispatch edges.
//!
//! Span ids are globally unique across processes because cluster workers
//! call [`skipper_obs::namespace_span_ids`] after their handshake, so a
//! worker span's remote `parent` id resolves unambiguously.

use serde_json::{json, Value};
use std::collections::HashMap;

/// One parsed obs JSONL record (the subset stitching needs).
#[derive(Debug, Clone)]
pub struct Rec {
    /// Microseconds since the emitting process's trace epoch.
    pub ts_us: i64,
    /// Emitting thread id (process-local).
    pub tid: u64,
    /// Event or span name.
    pub name: String,
    /// Record kind: `span_begin`, `span_end`, `instant`, `counter`,
    /// `gauge` or `observe`.
    pub ev: String,
    /// Span id for span records.
    pub span: Option<u64>,
    /// Parent span id for `span_begin` records.
    pub parent: Option<u64>,
    /// Free-form fields payload.
    pub fields: Option<Value>,
}

/// One process's parsed stream.
#[derive(Debug, Clone)]
pub struct ProcessStream {
    /// Display label (usually the source file name).
    pub label: String,
    /// Parsed records, input order.
    pub recs: Vec<Rec>,
    /// Lines that failed to parse (counted, not fatal).
    pub dropped_lines: usize,
}

/// Outcome counters of one stitch, for logs and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StitchStats {
    /// Input streams merged.
    pub processes: usize,
    /// Total spans across all streams.
    pub spans: usize,
    /// `worker_task` spans seen.
    pub worker_tasks: usize,
    /// `worker_task` spans whose parent chain reaches an `iteration` span.
    pub nested_under_iteration: usize,
    /// Cross-process parent edges rendered as flow arrows.
    pub cross_process_links: usize,
    /// Unparseable input lines skipped.
    pub dropped_lines: usize,
}

/// The stitched trace plus its statistics.
#[derive(Debug, Clone)]
pub struct Stitched {
    /// Chrome-trace JSON (`{"traceEvents":[...]}`), Perfetto-loadable.
    pub chrome_json: String,
    /// Merge statistics.
    pub stats: StitchStats,
}

/// Parse one obs JSONL stream. Unparseable lines are dropped and counted
/// — a crashed process may leave a torn final line, which must not sink
/// the whole stitch.
pub fn parse_stream(label: impl Into<String>, text: &str) -> ProcessStream {
    let mut recs = Vec::new();
    let mut dropped = 0usize;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(v) = serde_json::from_str::<Value>(line) else {
            dropped += 1;
            continue;
        };
        let (Some(ts_us), Some(name), Some(ev)) =
            (v["ts_us"].as_i64(), v["name"].as_str(), v["ev"].as_str())
        else {
            dropped += 1;
            continue;
        };
        recs.push(Rec {
            ts_us,
            tid: v["tid"].as_u64().unwrap_or(0),
            name: name.to_string(),
            ev: ev.to_string(),
            span: v["span"].as_u64(),
            parent: v["parent"].as_u64(),
            fields: match &v["fields"] {
                Value::Null => None,
                f => Some(f.clone()),
            },
        });
    }
    ProcessStream {
        label: label.into(),
        recs,
        dropped_lines: dropped,
    }
}

/// The stream's last reported coordinator-clock offset in µs
/// (`cluster.clock_sync` → `fields.offset_us`), or 0 when the stream
/// never synced (the coordinator itself, threaded loopback workers).
fn clock_offset_us(stream: &ProcessStream) -> i64 {
    stream
        .recs
        .iter()
        .rev()
        .find(|r| r.ev == "instant" && r.name == "cluster.clock_sync")
        .and_then(|r| r.fields.as_ref())
        .and_then(|f| f["offset_us"].as_i64())
        .unwrap_or(0)
}

/// Whether the stream contains the coordinator's `iteration` spans.
fn is_coordinator(stream: &ProcessStream) -> bool {
    stream
        .recs
        .iter()
        .any(|r| r.ev == "span_begin" && r.name == "iteration")
}

/// Merge parsed per-process streams into one Chrome trace.
///
/// # Errors
///
/// Returns a description when no stream was given.
pub fn stitch(streams: &[ProcessStream]) -> Result<Stitched, String> {
    if streams.is_empty() {
        return Err("no input streams to stitch".into());
    }
    // Coordinator first (pid 1); everything else keeps input order.
    let coord = streams.iter().position(is_coordinator).unwrap_or(0);
    let order: Vec<usize> = std::iter::once(coord)
        .chain((0..streams.len()).filter(|&i| i != coord))
        .collect();

    // Global span table: id -> (pid, shifted begin ts, tid, name, parent).
    struct SpanInfo {
        pid: u64,
        ts: i64,
        tid: u64,
        name: String,
        parent: Option<u64>,
    }
    let mut spans: HashMap<u64, SpanInfo> = HashMap::new();
    let mut stats = StitchStats {
        processes: streams.len(),
        ..StitchStats::default()
    };
    let mut events: Vec<(i64, Value)> = Vec::new();

    for (slot, &idx) in order.iter().enumerate() {
        let stream = &streams[idx];
        let pid = slot as u64 + 1;
        // Shifting by +offset moves this process's timestamps onto the
        // coordinator's clock axis. The coordinator's own offset is 0.
        let offset = if slot == 0 {
            0
        } else {
            clock_offset_us(stream)
        };
        stats.dropped_lines += stream.dropped_lines;
        events.push((
            i64::MIN,
            json!({
                "ph": "M", "pid": pid, "name": "process_name",
                "args": {"name": stream.label},
            }),
        ));
        for r in &stream.recs {
            let ts = r.ts_us + offset;
            match r.ev.as_str() {
                "span_begin" => {
                    let Some(id) = r.span else { continue };
                    stats.spans += 1;
                    if r.name == "worker_task" {
                        stats.worker_tasks += 1;
                    }
                    spans.insert(
                        id,
                        SpanInfo {
                            pid,
                            ts,
                            tid: r.tid,
                            name: r.name.clone(),
                            parent: r.parent,
                        },
                    );
                    let args = match r.parent {
                        Some(p) => json!({"span": id, "parent": p}),
                        None => json!({"span": id}),
                    };
                    events.push((
                        ts,
                        json!({
                            "ph": "B", "pid": pid, "tid": r.tid, "ts": ts,
                            "name": r.name, "args": args,
                        }),
                    ));
                }
                "span_end" => {
                    events.push((
                        ts,
                        json!({
                            "ph": "E", "pid": pid, "tid": r.tid, "ts": ts,
                            "name": r.name,
                        }),
                    ));
                }
                "instant" => {
                    events.push((
                        ts,
                        json!({
                            "ph": "i", "pid": pid, "tid": r.tid, "ts": ts,
                            "name": r.name, "s": "t",
                            "args": r.fields.clone().unwrap_or(Value::Null),
                        }),
                    ));
                }
                // Metric updates are registry concerns; the trace view
                // skips them to stay readable.
                _ => {}
            }
        }
    }

    // Flow arrows for cross-process parent edges, and the nesting check:
    // walk each worker_task's parent chain to an `iteration` span.
    let mut flows: Vec<(i64, Value)> = Vec::new();
    for info in spans.values() {
        let Some(parent) = info.parent else { continue };
        if let Some(p) = spans.get(&parent) {
            if p.pid != info.pid {
                stats.cross_process_links += 1;
                let link = json!({
                    "ph": "s", "pid": p.pid, "tid": p.tid, "ts": info.ts,
                    "id": parent, "name": "dispatch", "cat": "cluster",
                });
                let fin = json!({
                    "ph": "f", "bp": "e", "pid": info.pid, "tid": info.tid,
                    "ts": info.ts, "id": parent, "name": "dispatch",
                    "cat": "cluster",
                });
                flows.push((info.ts, link));
                flows.push((info.ts, fin));
            }
        }
        if info.name == "worker_task" {
            let mut at = Some(parent);
            let mut hops = 0;
            while let Some(id) = at {
                let Some(p) = spans.get(&id) else { break };
                if p.name == "iteration" {
                    stats.nested_under_iteration += 1;
                    break;
                }
                at = p.parent;
                hops += 1;
                if hops > 64 {
                    break; // defensive: a cycle would otherwise spin
                }
            }
        }
    }
    events.extend(flows);
    events.sort_by_key(|(ts, _)| *ts);
    let trace_events: Vec<Value> = events.into_iter().map(|(_, v)| v).collect();
    let doc = json!({
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    });
    Ok(Stitched {
        chrome_json: serde_json::to_string(&doc).map_err(|e| e.to_string())?,
        stats,
    })
}

/// Read, parse and stitch JSONL files from disk.
///
/// # Errors
///
/// Fails when a file cannot be read or no file was given.
pub fn stitch_files(paths: &[std::path::PathBuf]) -> Result<Stitched, String> {
    let mut streams = Vec::with_capacity(paths.len());
    for p in paths {
        let text =
            std::fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))?;
        let label = p
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| p.display().to_string());
        streams.push(parse_stream(label, &text));
    }
    stitch(&streams)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coord_stream() -> ProcessStream {
        // iteration span 5 open from ts 100 to 900.
        let text = r#"
{"ts_us":100,"tid":1,"level":"debug","name":"iteration","ev":"span_begin","span":5}
{"ts_us":900,"tid":1,"level":"debug","name":"iteration","ev":"span_end","span":5}
"#;
        parse_stream("coord", text)
    }

    fn worker_stream() -> ProcessStream {
        // Worker clock runs 1000 µs behind the coordinator: offset +1000.
        // worker_task (id from the namespaced range) parented under the
        // coordinator's span 5; a shard span nests under it locally.
        let text = r#"
{"ts_us":50,"tid":1,"level":"info","name":"cluster.clock_sync","ev":"instant","fields":{"worker":3,"offset_us":1000,"rtt_us":40}}
not json — torn final line simulation
{"ts_us":-800,"tid":1,"level":"debug","name":"worker_task","ev":"span_begin","span":3298534883328,"parent":5}
{"ts_us":-790,"tid":1,"level":"debug","name":"shard_forward","ev":"span_begin","span":3298534883329,"parent":3298534883328}
{"ts_us":-700,"tid":1,"level":"debug","name":"shard_forward","ev":"span_end","span":3298534883329}
{"ts_us":-600,"tid":1,"level":"debug","name":"worker_task","ev":"span_end","span":3298534883328}
"#;
        parse_stream("worker3", text)
    }

    #[test]
    fn stitches_worker_spans_under_coordinator_iterations() {
        // Worker listed first: coordinator detection must reorder.
        let out = stitch(&[worker_stream(), coord_stream()]).unwrap();
        assert_eq!(out.stats.processes, 2);
        assert_eq!(out.stats.spans, 3);
        assert_eq!(out.stats.worker_tasks, 1);
        assert_eq!(out.stats.nested_under_iteration, 1);
        assert_eq!(out.stats.cross_process_links, 1);
        assert_eq!(out.stats.dropped_lines, 1);
        // Clock shift applied: worker_task begin at -800 + 1000 = 200,
        // inside the coordinator's [100, 900] iteration window.
        let doc: Value = serde_json::from_str(&out.chrome_json).unwrap();
        let evs = doc["traceEvents"].as_array().unwrap();
        let task_begin = evs
            .iter()
            .find(|e| e["ph"] == "B" && e["name"] == "worker_task")
            .unwrap();
        assert_eq!(task_begin["ts"], 200);
        assert_eq!(task_begin["pid"], 2, "worker stream must not be pid 1");
        assert_eq!(task_begin["args"]["parent"], 5);
        // Flow arrow endpoints exist on both pids.
        assert!(evs.iter().any(|e| e["ph"] == "s" && e["pid"] == 1));
        assert!(evs.iter().any(|e| e["ph"] == "f" && e["pid"] == 2));
        // Process names rendered.
        assert!(evs
            .iter()
            .any(|e| e["ph"] == "M" && e["args"]["name"] == "coord"));
    }

    #[test]
    fn lone_stream_and_empty_inputs() {
        assert!(stitch(&[]).is_err());
        let out = stitch(&[coord_stream()]).unwrap();
        assert_eq!(out.stats.processes, 1);
        assert_eq!(out.stats.spans, 1);
        assert_eq!(out.stats.cross_process_links, 0);
    }

    #[test]
    fn unsynced_worker_gets_zero_offset() {
        let text = r#"
{"ts_us":10,"tid":2,"level":"debug","name":"worker_task","ev":"span_begin","span":99,"parent":5}
{"ts_us":20,"tid":2,"level":"debug","name":"worker_task","ev":"span_end","span":99}
"#;
        let out = stitch(&[coord_stream(), parse_stream("w", text)]).unwrap();
        let doc: Value = serde_json::from_str(&out.chrome_json).unwrap();
        let begin = doc["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e["ph"] == "B" && e["name"] == "worker_task")
            .cloned()
            .unwrap();
        assert_eq!(begin["ts"], 10);
        assert_eq!(out.stats.nested_under_iteration, 1);
    }
}
