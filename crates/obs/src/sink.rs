//! Pluggable event sinks.
//!
//! A [`Sink`] receives every event the collector accepts. Three are built
//! in: [`RingBufferSink`] (bounded in-memory capture, for tests and the
//! summary table), [`JsonlSink`] (one JSON object per line, for offline
//! analysis), and [`StderrSink`] (human-readable terminal logging with a
//! level filter — the single verbosity knob for `cargo run` output).

use crate::event::{Event, EventKind, Level};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Receiver of collector events. Implementations must be `Send`: the
/// collector serialises calls behind its own lock, but events can originate
/// on any thread.
pub trait Sink: Send {
    /// Accept one event.
    fn record(&mut self, event: &Event);

    /// Flush any buffered output (called on removal and by
    /// [`flush`](crate::flush)).
    fn flush(&mut self) {}
}

#[derive(Debug, Default)]
struct RingInner {
    events: Vec<Event>,
    dropped: u64,
    capacity: usize,
}

/// Reader half of a [`RingBufferSink`]: the sink itself is installed into
/// the collector, the handle stays with the caller.
#[derive(Debug, Clone)]
pub struct RingHandle {
    inner: Arc<Mutex<RingInner>>,
}

impl RingHandle {
    /// Copy out the captured events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        crate::named_lock("obs.ring", &self.inner).events.clone()
    }

    /// Captured events emitted by the calling thread only — the idiom for
    /// assertions in concurrently running tests.
    pub fn snapshot_current_thread(&self) -> Vec<Event> {
        let tid = crate::current_tid();
        crate::named_lock("obs.ring", &self.inner)
            .events
            .iter()
            .filter(|e| e.tid == tid)
            .cloned()
            .collect()
    }

    /// Captured events emitted by one specific thread, oldest first.
    ///
    /// Combined with [`tids`](RingHandle::tids) this lets a test (or the
    /// summary table) walk every worker-pool thread's event stream even
    /// though the pool threads themselves never hold the handle.
    pub fn snapshot_thread(&self, tid: u64) -> Vec<Event> {
        crate::named_lock("obs.ring", &self.inner)
            .events
            .iter()
            .filter(|e| e.tid == tid)
            .cloned()
            .collect()
    }

    /// Distinct thread ids seen in the captured events, ascending.
    pub fn tids(&self) -> Vec<u64> {
        let inner = crate::named_lock("obs.ring", &self.inner);
        let mut tids: Vec<u64> = inner.events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        tids
    }

    /// Events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        crate::named_lock("obs.ring", &self.inner).dropped
    }

    /// Discard everything captured so far.
    pub fn clear(&self) {
        let mut inner = crate::named_lock("obs.ring", &self.inner);
        inner.events.clear();
        inner.dropped = 0;
    }
}

/// Bounded in-memory sink. When full, the **oldest half** is discarded in
/// one batch (amortised O(1) per event) and the drop is counted.
#[derive(Debug)]
pub struct RingBufferSink {
    inner: Arc<Mutex<RingInner>>,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` events, plus its reader handle.
    pub fn new(capacity: usize) -> (RingBufferSink, RingHandle) {
        let inner = Arc::new(Mutex::new(RingInner {
            events: Vec::new(),
            dropped: 0,
            capacity: capacity.max(2),
        }));
        (
            RingBufferSink {
                inner: Arc::clone(&inner),
            },
            RingHandle { inner },
        )
    }
}

impl Sink for RingBufferSink {
    fn record(&mut self, event: &Event) {
        let mut inner = crate::named_lock("obs.ring", &self.inner);
        if inner.events.len() >= inner.capacity {
            let half = inner.capacity / 2;
            inner.events.drain(..half);
            inner.dropped += half as u64;
        }
        inner.events.push(event.clone());
    }
}

/// One JSON object per line, written to any `Write` (a file, a pipe, a
/// `Vec<u8>` in tests).
pub struct JsonlSink {
    out: Box<dyn Write + Send>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Wrap a writer.
    pub fn new(out: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink { out }
    }

    /// Create (truncating) a JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<JsonlSink> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::new(Box::new(std::io::BufWriter::new(file))))
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, event: &Event) {
        let _ = writeln!(self.out, "{}", event.to_json());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// A sink that discards every event.
///
/// Installing it still flips the collector to "enabled", so the metrics
/// registry aggregates counters/gauges/histograms without paying for event
/// storage — the mode the bench harness and
/// [`MetricsServer`](crate::serve::MetricsServer) run in.
#[derive(Debug, Default)]
pub struct NullSink;

impl NullSink {
    /// A new discard-everything sink.
    pub fn new() -> NullSink {
        NullSink
    }
}

impl Sink for NullSink {
    fn record(&mut self, _event: &Event) {}
}

/// Human-readable terminal logging at `min_level` and above.
///
/// `SKIPPER_OBS=info cargo run ...` (see
/// [`init_from_env`](crate::init_from_env)) installs one of these — the
/// workspace's replacement for scattered `eprintln!` calls.
#[derive(Debug)]
pub struct StderrSink {
    min_level: Level,
}

impl StderrSink {
    /// Log events at `min_level` and above.
    pub fn new(min_level: Level) -> StderrSink {
        StderrSink { min_level }
    }

    fn format(event: &Event) -> String {
        let mut line = format!(
            "[{:>10.3}ms {} {}] {}",
            event.ts_us as f64 / 1e3,
            event.tid,
            event.level,
            event.name
        );
        match &event.kind {
            EventKind::SpanBegin { .. } => line.push_str(" {"),
            EventKind::SpanEnd { .. } => line.push_str(" }"),
            EventKind::Instant => {}
            EventKind::Counter { delta } => line.push_str(&format!(" += {delta}")),
            EventKind::Gauge { value } => line.push_str(&format!(" = {value}")),
            EventKind::Observe { value } => line.push_str(&format!(" << {value}")),
        }
        for (k, v) in &event.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        line
    }
}

impl Sink for StderrSink {
    fn record(&mut self, event: &Event) {
        if event.level >= self.min_level {
            eprintln!("{}", Self::format(event));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instant(name: &'static str, ts: u64) -> Event {
        Event {
            name: name.into(),
            level: Level::Debug,
            ts_us: ts,
            tid: 1,
            kind: EventKind::Instant,
            fields: Vec::new(),
        }
    }

    #[test]
    fn ring_drops_oldest_half_when_full() {
        let (mut sink, handle) = RingBufferSink::new(4);
        for i in 0..5 {
            sink.record(&instant("e", i));
        }
        let events = handle.snapshot();
        // Capacity 4: the 5th insert dropped the oldest 2.
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].ts_us, 2);
        assert_eq!(handle.dropped(), 2);
        handle.clear();
        assert!(handle.snapshot().is_empty());
        assert_eq!(handle.dropped(), 0);
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::default();
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Box::new(Shared(Arc::clone(&buf))));
        sink.record(&instant("alpha", 1));
        sink.record(&instant("beta", 2));
        sink.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"name\":\"alpha\""));
        assert!(lines[1].contains("\"name\":\"beta\""));
    }

    #[test]
    fn stderr_format_is_readable() {
        let mut e = instant("governor.action", 1500);
        e.fields.push(("c", 3usize.into()));
        let line = StderrSink::format(&e);
        assert!(line.contains("governor.action"));
        assert!(line.contains("c=3"));
        assert!(line.contains("1.500ms"));
    }
}
