//! Chrome trace-event export: open the result in <https://ui.perfetto.dev>
//! or `chrome://tracing`.
//!
//! The emitted file is the JSON-object form of the [Trace Event Format]:
//! spans become `B`/`E` duration events, instants become `i`, and
//! counter/gauge updates become `C` counter tracks (counters are
//! accumulated so the track shows running totals).
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::event::{push_json_f64, push_json_fields, push_json_string, Event, EventKind};
use crate::sink::Sink;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Serialise `events` into a Chrome-trace JSON string.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut counters: BTreeMap<(&str, u64), f64> = BTreeMap::new();
    let mut first = true;
    for event in events {
        let mut entry = String::with_capacity(96);
        entry.push_str("{\"pid\":1,\"tid\":");
        let _ = write!(entry, "{}", event.tid);
        let _ = write!(entry, ",\"ts\":{}", event.ts_us);
        entry.push_str(",\"name\":");
        push_json_string(&mut entry, &event.name);
        entry.push_str(",\"cat\":");
        push_json_string(&mut entry, &event.level.to_string());
        match &event.kind {
            EventKind::SpanBegin { .. } => entry.push_str(",\"ph\":\"B\""),
            EventKind::SpanEnd { .. } => entry.push_str(",\"ph\":\"E\""),
            EventKind::Instant => entry.push_str(",\"ph\":\"i\",\"s\":\"t\""),
            EventKind::Counter { delta } => {
                let slot = counters
                    .entry((event.name.as_ref(), event.tid))
                    .or_insert(0.0);
                // SAFETY of the running total: the collector delivers
                // events in submission order, so accumulation here matches
                // the registry's totals.
                *slot += *delta;
                entry.push_str(",\"ph\":\"C\",\"args\":{\"value\":");
                push_json_f64(&mut entry, *slot);
                entry.push_str("}}");
                push_entry(&mut out, &mut first, &entry);
                continue;
            }
            EventKind::Gauge { value } | EventKind::Observe { value } => {
                entry.push_str(",\"ph\":\"C\",\"args\":{\"value\":");
                push_json_f64(&mut entry, *value);
                entry.push_str("}}");
                push_entry(&mut out, &mut first, &entry);
                continue;
            }
        }
        if !event.fields.is_empty() {
            entry.push_str(",\"args\":");
            push_json_fields(&mut entry, &event.fields);
        }
        entry.push('}');
        push_entry(&mut out, &mut first, &entry);
    }
    out.push_str("]}");
    out
}

fn push_entry(out: &mut String, first: &mut bool, entry: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str(entry);
}

/// Write `events` as a Chrome-trace file at `path`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_chrome_trace(events: &[Event], path: impl AsRef<Path>) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json(events))
}

/// A sink that buffers every event and writes the Chrome-trace file on
/// [`flush`](Sink::flush) (and on drop).
#[derive(Debug)]
pub struct ChromeTraceSink {
    path: PathBuf,
    events: Vec<Event>,
    written: bool,
}

impl ChromeTraceSink {
    /// Buffer events destined for `path`.
    pub fn new(path: impl Into<PathBuf>) -> ChromeTraceSink {
        ChromeTraceSink {
            path: path.into(),
            events: Vec::new(),
            written: false,
        }
    }

    /// Events buffered so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Sink for ChromeTraceSink {
    fn record(&mut self, event: &Event) {
        self.events.push(event.clone());
        self.written = false;
    }

    fn flush(&mut self) {
        if !self.written {
            if let Err(e) = write_chrome_trace(&self.events, &self.path) {
                eprintln!("warning: cannot write {}: {e}", self.path.display());
            } else {
                self.written = true;
            }
        }
    }
}

impl Drop for ChromeTraceSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Level;

    fn ev(name: &'static str, ts: u64, kind: EventKind) -> Event {
        Event {
            name: name.into(),
            level: Level::Debug,
            ts_us: ts,
            tid: 1,
            kind,
            fields: Vec::new(),
        }
    }

    #[test]
    fn spans_become_b_e_pairs() {
        let events = [
            ev(
                "seg",
                10,
                EventKind::SpanBegin {
                    id: 1,
                    parent: None,
                },
            ),
            ev("seg", 30, EventKind::SpanEnd { id: 1 }),
        ];
        let json = chrome_trace_json(&events);
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn counters_accumulate_into_running_totals() {
        let events = [
            ev("n", 1, EventKind::Counter { delta: 2.0 }),
            ev("n", 2, EventKind::Counter { delta: 3.0 }),
        ];
        let json = chrome_trace_json(&events);
        assert!(json.contains("{\"value\":2}"));
        assert!(json.contains("{\"value\":5}"));
    }

    #[test]
    fn gauges_pass_through_as_counter_tracks() {
        let events = [ev("g", 1, EventKind::Gauge { value: 7.5 })];
        let json = chrome_trace_json(&events);
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("{\"value\":7.5}"));
    }

    #[test]
    fn sink_writes_file_on_flush() {
        let dir = std::env::temp_dir().join("skipper_obs_trace_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("t.trace.json");
        let mut sink = ChromeTraceSink::new(&path);
        sink.record(&ev("x", 1, EventKind::Instant));
        assert_eq!(sink.len(), 1);
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"ph\":\"i\""));
        let _ = std::fs::remove_file(&path);
    }
}
