//! Post-hoc analysis of a captured event stream: per-span-name timing
//! aggregates (total vs self time) and a compact terminal table.

use crate::event::{Event, EventKind};
use crate::metrics::{Histogram, MetricsSnapshot};
use std::collections::{BTreeMap, HashMap};

/// Timing aggregate for one span name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanStat {
    /// Span name.
    pub name: String,
    /// Completed spans with this name.
    pub count: u64,
    /// Sum of wall durations, microseconds.
    pub total_us: u64,
    /// Total minus time spent in child spans, microseconds.
    pub self_us: u64,
    /// Median duration, microseconds (bucket-interpolated, see
    /// [`Histogram::quantile`]).
    pub p50_us: u64,
    /// 95th-percentile duration, microseconds.
    pub p95_us: u64,
    /// 99th-percentile duration, microseconds.
    pub p99_us: u64,
}

impl SpanStat {
    /// Mean duration per span, microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }
}

/// Aggregate the span begin/end events in `events` into per-name stats,
/// sorted by total time descending.
///
/// Self time is total time minus the summed durations of **direct**
/// children. Spans without a matching end (still open when the capture
/// stopped) are ignored.
pub fn span_stats(events: &[Event]) -> Vec<SpanStat> {
    struct Open {
        name: String,
        parent: Option<u64>,
        begin_us: u64,
    }
    let mut open: HashMap<u64, Open> = HashMap::new();
    let mut child_us: HashMap<u64, u64> = HashMap::new();
    let mut stats: BTreeMap<String, SpanStat> = BTreeMap::new();
    let mut durations: BTreeMap<String, Histogram> = BTreeMap::new();
    for event in events {
        match &event.kind {
            EventKind::SpanBegin { id, parent } => {
                open.insert(
                    *id,
                    Open {
                        name: event.name.to_string(),
                        parent: *parent,
                        begin_us: event.ts_us,
                    },
                );
            }
            EventKind::SpanEnd { id } => {
                let Some(span) = open.remove(id) else {
                    continue;
                };
                let duration = event.ts_us.saturating_sub(span.begin_us);
                if let Some(parent) = span.parent {
                    *child_us.entry(parent).or_insert(0) += duration;
                }
                let children = child_us.remove(id).unwrap_or(0);
                durations
                    .entry(span.name.clone())
                    .or_insert_with(Histogram::default_us)
                    .observe(duration as f64);
                let stat = stats.entry(span.name.clone()).or_insert_with(|| SpanStat {
                    name: span.name,
                    ..SpanStat::default()
                });
                stat.count += 1;
                stat.total_us += duration;
                stat.self_us += duration.saturating_sub(children);
            }
            _ => {}
        }
    }
    let mut out: Vec<SpanStat> = stats.into_values().collect();
    for stat in &mut out {
        if let Some(hist) = durations.get(&stat.name) {
            stat.p50_us = hist.quantile(0.50).round() as u64;
            stat.p95_us = hist.quantile(0.95).round() as u64;
            stat.p99_us = hist.quantile(0.99).round() as u64;
        }
    }
    out.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
    out
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

/// Render the terminal summary: spans by total/self time, then the top
/// `max_counters` counters and every gauge of `metrics`.
pub fn render_summary(events: &[Event], metrics: &MetricsSnapshot, max_counters: usize) -> String {
    let mut out = String::new();
    let stats = span_stats(events);
    out.push_str(&format!(
        "{:<24} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
        "span", "count", "total", "self", "mean", "p50", "p95", "p99"
    ));
    for s in &stats {
        out.push_str(&format!(
            "{:<24} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            s.name,
            s.count,
            fmt_us(s.total_us),
            fmt_us(s.self_us),
            fmt_us(s.mean_us() as u64),
            fmt_us(s.p50_us),
            fmt_us(s.p95_us),
            fmt_us(s.p99_us),
        ));
    }
    if stats.is_empty() {
        out.push_str("(no completed spans captured)\n");
    }
    if !metrics.counters.is_empty() {
        out.push_str(&format!("\n{:<40} {:>14}\n", "counter", "total"));
        let mut counters = metrics.counters.clone();
        counters.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        for (name, value) in counters.iter().take(max_counters) {
            out.push_str(&format!("{name:<40} {value:>14}\n"));
        }
    }
    if !metrics.gauges.is_empty() {
        out.push_str(&format!("\n{:<40} {:>14}\n", "gauge", "value"));
        for (name, value) in &metrics.gauges {
            out.push_str(&format!("{name:<40} {value:>14.3}\n"));
        }
    }
    for (name, hist) in &metrics.histograms {
        out.push_str(&format!(
            "\nhistogram {name}: n={} mean={:.1} min={:.1} max={:.1}\n",
            hist.count(),
            hist.mean(),
            hist.min(),
            hist.max()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Level;

    fn span_ev(name: &'static str, ts: u64, kind: EventKind) -> Event {
        Event {
            name: name.into(),
            level: Level::Debug,
            ts_us: ts,
            tid: 1,
            kind,
            fields: Vec::new(),
        }
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        // parent [0,100] with children [10,30] and [40,80]:
        // parent total = 100, self = 100 - (20 + 40) = 40.
        let events = [
            span_ev(
                "parent",
                0,
                EventKind::SpanBegin {
                    id: 1,
                    parent: None,
                },
            ),
            span_ev(
                "child",
                10,
                EventKind::SpanBegin {
                    id: 2,
                    parent: Some(1),
                },
            ),
            span_ev("child", 30, EventKind::SpanEnd { id: 2 }),
            span_ev(
                "child",
                40,
                EventKind::SpanBegin {
                    id: 3,
                    parent: Some(1),
                },
            ),
            span_ev("child", 80, EventKind::SpanEnd { id: 3 }),
            span_ev("parent", 100, EventKind::SpanEnd { id: 1 }),
        ];
        let stats = span_stats(&events);
        assert_eq!(stats.len(), 2);
        let parent = stats.iter().find(|s| s.name == "parent").unwrap();
        assert_eq!(
            (parent.count, parent.total_us, parent.self_us),
            (1, 100, 40)
        );
        let child = stats.iter().find(|s| s.name == "child").unwrap();
        assert_eq!((child.count, child.total_us, child.self_us), (2, 60, 60));
        // Sorted by total time descending.
        assert_eq!(stats[0].name, "parent");
    }

    #[test]
    fn grandchildren_only_reduce_their_direct_parent() {
        // a [0,100] > b [10,90] > c [20,40]:
        // c self 20; b self 80-20=60; a self 100-80=20.
        let events = [
            span_ev(
                "a",
                0,
                EventKind::SpanBegin {
                    id: 1,
                    parent: None,
                },
            ),
            span_ev(
                "b",
                10,
                EventKind::SpanBegin {
                    id: 2,
                    parent: Some(1),
                },
            ),
            span_ev(
                "c",
                20,
                EventKind::SpanBegin {
                    id: 3,
                    parent: Some(2),
                },
            ),
            span_ev("c", 40, EventKind::SpanEnd { id: 3 }),
            span_ev("b", 90, EventKind::SpanEnd { id: 2 }),
            span_ev("a", 100, EventKind::SpanEnd { id: 1 }),
        ];
        let stats = span_stats(&events);
        let get = |n: &str| stats.iter().find(|s| s.name == n).unwrap().clone();
        assert_eq!(get("a").self_us, 20);
        assert_eq!(get("b").self_us, 60);
        assert_eq!(get("c").self_us, 20);
    }

    #[test]
    fn unclosed_spans_are_ignored() {
        let events = [span_ev(
            "open",
            0,
            EventKind::SpanBegin {
                id: 1,
                parent: None,
            },
        )];
        assert!(span_stats(&events).is_empty());
    }

    #[test]
    fn percentiles_pin_bucket_interpolation() {
        // Four "work" spans of 5, 50, 500 and 5000 µs, bucketed into the
        // default power-of-10 duration histogram (one sample per bucket).
        let mut events = Vec::new();
        let mut ts = 0u64;
        for (i, dur) in [5u64, 50, 500, 5000].into_iter().enumerate() {
            let id = i as u64 + 1;
            events.push(span_ev(
                "work",
                ts,
                EventKind::SpanBegin { id, parent: None },
            ));
            events.push(span_ev("work", ts + dur, EventKind::SpanEnd { id }));
            ts += dur + 1;
        }
        let stats = span_stats(&events);
        let work = stats.iter().find(|s| s.name == "work").unwrap();
        // rank(p50)=2 lands exactly on the cumulative edge of the (10,100]
        // bucket -> its upper bound, 100.
        assert_eq!(work.p50_us, 100);
        // rank(p95)=3.8: 0.8 into (1000, min(10000, max=5000)] -> 4200.
        assert_eq!(work.p95_us, 4200);
        // rank(p99)=3.96: 0.96 into the same bucket -> 4840.
        assert_eq!(work.p99_us, 4840);

        let text = render_summary(&events, &MetricsSnapshot::default(), 10);
        let header = text.lines().next().unwrap();
        for col in ["p50", "p95", "p99"] {
            assert!(header.contains(col), "missing column {col}: {header}");
        }
        assert!(text.contains("4.20ms"));
        assert!(text.contains("4.84ms"));
    }

    #[test]
    fn summary_renders_spans_and_metrics() {
        let events = [
            span_ev(
                "work",
                0,
                EventKind::SpanBegin {
                    id: 1,
                    parent: None,
                },
            ),
            span_ev("work", 2_500, EventKind::SpanEnd { id: 1 }),
        ];
        let registry = crate::Registry::new();
        registry.counter_add("skipper.steps_skipped", 12.0);
        registry.gauge_set("skipper.sst_threshold", 88.5);
        let text = render_summary(&events, &registry.snapshot(), 10);
        assert!(text.contains("work"));
        assert!(text.contains("2.50ms"));
        assert!(text.contains("skipper.steps_skipped"));
        assert!(text.contains("88.5"));
    }
}
