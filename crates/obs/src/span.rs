//! Span guards: RAII tracing of nested regions of work.
//!
//! [`SpanGuard::enter`] emits a `SpanBegin` event and pushes the span onto
//! a thread-local stack (giving automatic parent/child nesting); dropping
//! the guard pops the stack and emits the matching `SpanEnd`. Guards must
//! be dropped on the thread that created them — the same single-thread
//! discipline the memory profiler's registrations follow.

use crate::event::{Event, EventKind, Fields, Level};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// An open span; dropping it closes the span.
///
/// Prefer the [`span!`](crate::span!) macro, which skips field construction
/// entirely while tracing is disabled.
#[derive(Debug)]
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    id: u64,
    name: &'static str,
    live: bool,
}

impl SpanGuard {
    /// Open a span named `name` with `fields`, if tracing is enabled.
    pub fn enter(name: &'static str, fields: Fields) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard::disabled();
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            s.push(id);
            parent
        });
        crate::submit(Event {
            name: name.into(),
            level: Level::Debug,
            ts_us: crate::now_us(),
            tid: crate::current_tid(),
            kind: EventKind::SpanBegin { id, parent },
            fields,
        });
        SpanGuard {
            id,
            name,
            live: true,
        }
    }

    /// Open a span with an explicit parent instead of the thread-local
    /// stack top.
    ///
    /// A worker thread has an empty span stack, so spans it opens would
    /// float free of the session's `iteration` span; passing the parent id
    /// captured on the dispatching thread stitches the trace together.
    /// The new span still joins this thread's stack, so spans nested under
    /// it parent normally.
    pub fn enter_with_parent(name: &'static str, fields: Fields, parent: Option<u64>) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard::disabled();
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let fallback = s.last().copied();
            s.push(id);
            parent.or(fallback)
        });
        crate::submit(Event {
            name: name.into(),
            level: Level::Debug,
            ts_us: crate::now_us(),
            tid: crate::current_tid(),
            kind: EventKind::SpanBegin { id, parent },
            fields,
        });
        SpanGuard {
            id,
            name,
            live: true,
        }
    }

    /// A no-op guard (what `enter` returns while tracing is disabled).
    pub fn disabled() -> SpanGuard {
        SpanGuard {
            id: 0,
            name: "",
            live: false,
        }
    }

    /// The span's process-unique id (0 for a disabled guard).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether this guard actually opened a span.
    pub fn is_recording(&self) -> bool {
        self.live
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Tolerate out-of-order drops (e.g. guards stored in structs):
            // remove this id wherever it sits rather than blindly popping.
            if let Some(pos) = s.iter().rposition(|&id| id == self.id) {
                s.remove(pos);
            }
        });
        crate::submit(Event {
            name: self.name.into(),
            level: Level::Debug,
            ts_us: crate::now_us(),
            tid: crate::current_tid(),
            kind: EventKind::SpanEnd { id: self.id },
            fields: Vec::new(),
        });
    }
}

/// Id of the innermost open span on this thread, if any.
pub fn current_span() -> Option<u64> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}
