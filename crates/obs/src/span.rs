//! Span guards: RAII tracing of nested regions of work.
//!
//! [`SpanGuard::enter`] emits a `SpanBegin` event and pushes the span onto
//! a thread-local stack (giving automatic parent/child nesting); dropping
//! the guard pops the stack and emits the matching `SpanEnd`. Guards must
//! be dropped on the thread that created them — the same single-thread
//! discipline the memory profiler's registrations follow.
//!
//! The stack itself is shared: each thread owns an
//! `Arc<Mutex<Vec<(id, name)>>>` that it registers with the
//! [`profile`](crate::profile) module's thread registry on first span (and
//! deregisters on thread exit), so the sampling profiler can snapshot
//! every thread's live span nesting without any per-span bookkeeping
//! beyond the push/pop that nesting already requires.

use crate::event::{Event, EventKind, Fields, Level};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// A thread's span stack as the sampling profiler sees it: `(span id,
/// span name)` pairs, innermost last.
pub(crate) type SharedStack = Arc<Mutex<Vec<(u64, &'static str)>>>;

/// Thread-local owner of the shared stack. Registers with the profiler's
/// thread registry lazily (first span or [`touch_thread_stack`]) and
/// deregisters when the thread exits and the thread-local is destroyed.
struct ThreadStack {
    stack: SharedStack,
    registered: bool,
}

impl Drop for ThreadStack {
    fn drop(&mut self) {
        if self.registered {
            crate::profile::deregister_thread(&self.stack);
        }
    }
}

thread_local! {
    static SPAN_STACK: RefCell<ThreadStack> = RefCell::new(ThreadStack {
        stack: Arc::new(Mutex::new(Vec::new())),
        registered: false,
    });
}

/// Run `f` on this thread's shared span stack, registering the thread
/// with the profiler first when `register` is set. The registry lock (in
/// `register_thread`) is always taken *before* the stack lock — the same
/// order the sampler uses — so the two never deadlock.
fn with_stack<R>(register: bool, f: impl FnOnce(&mut Vec<(u64, &'static str)>) -> R) -> R {
    SPAN_STACK.with(|s| {
        let mut ts = s.borrow_mut();
        if register && !ts.registered {
            ts.registered = true;
            crate::profile::register_thread(Arc::clone(&ts.stack));
        }
        let mut stack = crate::lock_unpoisoned(&ts.stack);
        f(&mut stack)
    })
}

/// Force this thread's (possibly still empty) span stack into the
/// profiler's thread registry. Long-lived worker threads call this at
/// start-up so the sampler's census covers them even before their first
/// span opens.
pub(crate) fn touch_thread_stack() {
    with_stack(true, |_| {});
}

/// Whether this thread has registered its span stack with the profiler
/// (test hook: disabled tracing must never touch the machinery).
#[cfg(test)]
pub(crate) fn thread_is_registered() -> bool {
    SPAN_STACK.with(|s| s.borrow().registered)
}

/// An open span; dropping it closes the span.
///
/// Prefer the [`span!`](crate::span!) macro, which skips field construction
/// entirely while tracing is disabled.
#[derive(Debug)]
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    id: u64,
    name: &'static str,
    live: bool,
}

impl SpanGuard {
    /// Open a span named `name` with `fields`, if tracing is enabled.
    pub fn enter(name: &'static str, fields: Fields) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard::disabled();
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = with_stack(true, |s| {
            let parent = s.last().map(|&(id, _)| id);
            s.push((id, name));
            parent
        });
        crate::submit(Event {
            name: name.into(),
            level: Level::Debug,
            ts_us: crate::now_us(),
            tid: crate::current_tid(),
            kind: EventKind::SpanBegin { id, parent },
            fields,
        });
        SpanGuard {
            id,
            name,
            live: true,
        }
    }

    /// Open a span with an explicit parent instead of the thread-local
    /// stack top.
    ///
    /// A worker thread has an empty span stack, so spans it opens would
    /// float free of the session's `iteration` span; passing the parent id
    /// captured on the dispatching thread stitches the trace together.
    /// The new span still joins this thread's stack, so spans nested under
    /// it parent normally.
    pub fn enter_with_parent(name: &'static str, fields: Fields, parent: Option<u64>) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard::disabled();
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = with_stack(true, |s| {
            let fallback = s.last().map(|&(id, _)| id);
            s.push((id, name));
            parent.or(fallback)
        });
        crate::submit(Event {
            name: name.into(),
            level: Level::Debug,
            ts_us: crate::now_us(),
            tid: crate::current_tid(),
            kind: EventKind::SpanBegin { id, parent },
            fields,
        });
        SpanGuard {
            id,
            name,
            live: true,
        }
    }

    /// A no-op guard (what `enter` returns while tracing is disabled).
    pub fn disabled() -> SpanGuard {
        SpanGuard {
            id: 0,
            name: "",
            live: false,
        }
    }

    /// The span's process-unique id (0 for a disabled guard).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether this guard actually opened a span.
    pub fn is_recording(&self) -> bool {
        self.live
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        // A LIFO drop finds its own id on top. Anything else — a guard
        // stored in a struct and dropped late, a sibling closed out of
        // order — used to silently pop *someone else's* id and corrupt
        // the nesting for the rest of the thread's life. Detect it, repair
        // by removing exactly this guard's id, and count the repair.
        let repaired = with_stack(false, |s| {
            let lifo = s.last().is_some_and(|&(id, _)| id == self.id);
            if let Some(pos) = s.iter().rposition(|&(id, _)| id == self.id) {
                s.remove(pos);
            }
            !lifo
        });
        if repaired {
            crate::counter_add("obs.span_stack_repair", 1.0);
        }
        crate::submit(Event {
            name: self.name.into(),
            level: Level::Debug,
            ts_us: crate::now_us(),
            tid: crate::current_tid(),
            kind: EventKind::SpanEnd { id: self.id },
            fields: Vec::new(),
        });
    }
}

/// Id of the innermost open span on this thread, if any.
pub fn current_span() -> Option<u64> {
    current_entry().map(|(id, _)| id)
}

/// Innermost `(id, name)` on this thread's stack, if any.
pub(crate) fn current_entry() -> Option<(u64, &'static str)> {
    with_stack(false, |s| s.last().copied())
}

/// Move this process's span-id allocator to at least `base`.
///
/// Span ids are process-local `u64`s, so two processes tracing the same
/// distributed run would hand out colliding ids and the stitched trace
/// would cross-wire parent links. A cluster worker calls this right after
/// its Welcome handshake with a base derived from its worker id (e.g.
/// `id << 40`), carving the id space into non-overlapping per-process
/// ranges. Monotonic: a base below the current allocator is a no-op, so
/// ids never move backwards.
pub fn namespace_span_ids(base: u64) {
    NEXT_SPAN_ID.fetch_max(base.max(1), Ordering::Relaxed);
}

/// A portable capture of "where am I in the trace?" — the cross-thread
/// span-context carrier.
///
/// Thread-local span stacks give automatic nesting on one thread, but a
/// worker pool executes jobs on threads whose stacks are empty, so every
/// span a worker opens would float free of the dispatching `iteration`
/// span. Capture a context on the dispatching thread, move it into the
/// job (it is `Copy + Send`), and [`adopt`](SpanContext::adopt) it on the
/// worker: while the returned guard lives, every span the worker opens —
/// including ones deep inside library code that knows nothing about the
/// pool — nests under the captured parent.
///
/// ```
/// let (sink, _handle) = skipper_obs::RingBufferSink::new(64);
/// let id = skipper_obs::add_sink(Box::new(sink));
/// let outer = skipper_obs::span!("dispatch");
/// let ctx = skipper_obs::SpanContext::capture();
/// std::thread::spawn(move || {
///     let _adopted = ctx.adopt();
///     let _task = skipper_obs::span!("task"); // parented under "dispatch"
/// })
/// .join()
/// .unwrap();
/// drop(outer);
/// skipper_obs::remove_sink(id);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    parent: Option<(u64, &'static str)>,
}

impl SpanContext {
    /// Capture the calling thread's innermost open span (if any).
    pub fn capture() -> SpanContext {
        SpanContext {
            parent: current_entry(),
        }
    }

    /// An empty context; adopting it is a no-op.
    pub fn none() -> SpanContext {
        SpanContext { parent: None }
    }

    /// The captured span id, if one was open at capture time.
    pub fn parent(&self) -> Option<u64> {
        self.parent.map(|(id, _)| id)
    }

    /// Make the captured span the parent of spans opened on this thread
    /// for as long as the returned guard lives. Emits no events itself;
    /// it only seeds the thread-local stack (the captured span's name
    /// rides along so sampled stacks keep the real frame name).
    pub fn adopt(&self) -> ContextGuard {
        let Some((id, name)) = self.parent else {
            return ContextGuard { id: None };
        };
        if !crate::enabled() {
            return ContextGuard { id: None };
        }
        with_stack(true, |s| s.push((id, name)));
        ContextGuard { id: Some(id) }
    }
}

/// Keeps an adopted [`SpanContext`] active on the current thread; dropping
/// it restores the previous parent.
#[derive(Debug)]
#[must_use = "dropping the guard immediately un-adopts the context"]
pub struct ContextGuard {
    id: Option<u64>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        let Some(id) = self.id else { return };
        with_stack(false, |s| {
            if let Some(pos) = s.iter().rposition(|&(x, _)| x == id) {
                s.remove(pos);
            }
        });
    }
}
