//! The event vocabulary: everything the collector can record.
//!
//! An [`Event`] is one timestamped fact — a span boundary, a point-in-time
//! occurrence, or a metric update — plus free-form key/value [`Fields`].
//! Events are cheap to clone (fields are small vectors) so in-memory sinks
//! can hand out snapshots.

use std::borrow::Cow;
use std::fmt::Write as _;

/// Severity / verbosity class of an event.
///
/// Sinks filter on it: the stderr sink installed by
/// [`init_from_env`](crate::init_from_env) shows `Info` and above by
/// default, while trace exporters usually take everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Level {
    /// Per-timestep firehose (skip decisions, kernel-ish detail).
    Trace,
    /// Per-segment / per-iteration structure.
    #[default]
    Debug,
    /// Run-level happenings a user wants on a terminal (governor actions,
    /// snapshots, epoch results).
    Info,
    /// Faults and recoveries (sentinel rollbacks).
    Warn,
}

impl Level {
    /// Parse `"trace" | "debug" | "info" | "warn"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "trace" => Some(Level::Trace),
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" => Some(Level::Warn),
            _ => None,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
        })
    }
}

/// A field value. Conversions exist for the common scalar types so the
/// [`span!`](crate::span!) / [`instant!`](crate::instant!) macros accept
/// plain expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

macro_rules! field_from {
    ($($ty:ty => $variant:ident as $conv:ty),+ $(,)?) => {
        $(impl From<$ty> for FieldValue {
            fn from(v: $ty) -> FieldValue {
                FieldValue::$variant(v as $conv)
            }
        })+
    };
}

field_from!(
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64,
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
    f32 => F64 as f64, f64 => F64 as f64,
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// Key/value payload of an event.
pub type Fields = Vec<(&'static str, FieldValue)>;

/// What kind of fact an [`Event`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span opened. `parent` is the id of the enclosing span on the same
    /// thread, if any.
    SpanBegin {
        /// Process-unique span id.
        id: u64,
        /// Enclosing span on the same thread.
        parent: Option<u64>,
    },
    /// The span with `id` closed.
    SpanEnd {
        /// Id from the matching [`EventKind::SpanBegin`].
        id: u64,
    },
    /// A point-in-time occurrence.
    Instant,
    /// A counter was incremented by `delta`.
    Counter {
        /// Increment (counters are monotone; deltas are non-negative).
        delta: f64,
    },
    /// A gauge was set to `value`.
    Gauge {
        /// New gauge value.
        value: f64,
    },
    /// A histogram observed `value`.
    Observe {
        /// Observed sample.
        value: f64,
    },
}

/// One timestamped record delivered to every installed sink.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event (or metric) name, dot-separated (`"recompute_segment"`,
    /// `"skipper.steps_skipped"`).
    pub name: Cow<'static, str>,
    /// Verbosity class.
    pub level: Level,
    /// Microseconds since the process-wide trace epoch
    /// (see [`now_us`](crate::now_us)).
    pub ts_us: u64,
    /// Small dense id of the emitting thread (stable for the thread's
    /// lifetime; the main thread is usually 1).
    pub tid: u64,
    /// The fact itself.
    pub kind: EventKind,
    /// Free-form payload.
    pub fields: Fields,
}

/// Append `s` JSON-escaped (with surrounding quotes) to `out`.
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a JSON number (`null` for non-finite floats, which JSON cannot
/// represent) to `out`.
pub fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_json_field_value(out: &mut String, v: &FieldValue) {
    match v {
        FieldValue::I64(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::U64(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::F64(v) => push_json_f64(out, *v),
        FieldValue::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::Str(v) => push_json_string(out, v),
    }
}

/// Append the fields as a JSON object (`{"k":v,...}`) to `out`.
pub fn push_json_fields(out: &mut String, fields: &Fields) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(out, k);
        out.push(':');
        push_json_field_value(out, v);
    }
    out.push('}');
}

impl Event {
    /// One-line JSON representation (the JSONL sink's record format).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"ts_us\":");
        let _ = write!(out, "{}", self.ts_us);
        let _ = write!(out, ",\"tid\":{}", self.tid);
        out.push_str(",\"level\":");
        push_json_string(&mut out, &self.level.to_string());
        out.push_str(",\"name\":");
        push_json_string(&mut out, &self.name);
        match &self.kind {
            EventKind::SpanBegin { id, parent } => {
                let _ = write!(out, ",\"ev\":\"span_begin\",\"span\":{id}");
                if let Some(p) = parent {
                    let _ = write!(out, ",\"parent\":{p}");
                }
            }
            EventKind::SpanEnd { id } => {
                let _ = write!(out, ",\"ev\":\"span_end\",\"span\":{id}");
            }
            EventKind::Instant => out.push_str(",\"ev\":\"instant\""),
            EventKind::Counter { delta } => {
                out.push_str(",\"ev\":\"counter\",\"delta\":");
                push_json_f64(&mut out, *delta);
            }
            EventKind::Gauge { value } => {
                out.push_str(",\"ev\":\"gauge\",\"value\":");
                push_json_f64(&mut out, *value);
            }
            EventKind::Observe { value } => {
                out.push_str(",\"ev\":\"observe\",\"value\":");
                push_json_f64(&mut out, *value);
            }
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":");
            push_json_fields(&mut out, &self.fields);
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Trace < Level::Debug);
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert_eq!(Level::parse("INFO"), Some(Level::Info));
        assert_eq!(Level::parse("bogus"), None);
    }

    #[test]
    fn json_escaping() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let mut s = String::new();
        push_json_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn event_json_roundtrip_shape() {
        let e = Event {
            name: "skip_decision".into(),
            level: Level::Trace,
            ts_us: 42,
            tid: 1,
            kind: EventKind::Instant,
            fields: vec![("t", 3usize.into()), ("skip", true.into())],
        };
        let j = e.to_json();
        assert!(j.starts_with("{\"ts_us\":42"));
        assert!(j.contains("\"ev\":\"instant\""));
        assert!(j.contains("\"fields\":{\"t\":3,\"skip\":true}"));
        assert!(j.ends_with('}'));
    }

    #[test]
    fn field_conversions() {
        assert_eq!(FieldValue::from(3i32), FieldValue::I64(3));
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(0.5f32), FieldValue::F64(0.5));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".into()));
    }
}
