//! The metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! A [`Registry`] aggregates in-process; sinks additionally see every
//! update as an [`Event`](crate::Event), so exporters can reconstruct time
//! series while the registry answers "what is the total now?". Metric keys
//! are plain strings; a label dimension is encoded into the key with
//! [`labeled`] (`"memprof.peak_bytes{category=weights}"`), keeping the
//! registry flat and allocation-light.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Build a labelled metric key: `name{key=value}`.
pub fn labeled(name: &str, key: &str, value: impl std::fmt::Display) -> String {
    format!("{name}{{{key}={value}}}")
}

/// A fixed-bucket histogram: counts per bucket, plus sum/count/min/max of
/// the raw samples.
///
/// Bucket `i` covers `(bounds[i-1], bounds[i]]` (the first covers
/// `(-inf, bounds[0]]`); one extra overflow bucket covers
/// `(bounds.last(), +inf)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    /// Per-bucket exemplar: the span id of the last sample recorded into
    /// that bucket via [`observe_with_exemplar`](Histogram::observe_with_exemplar)
    /// (0 = none). Links a bad latency bucket straight to a trace span.
    exemplars: Vec<u64>,
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Histogram with the given strictly-increasing upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            exemplars: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Default bucketing for duration-like values in microseconds:
    /// powers of 10 from 1 µs to 100 s.
    pub fn default_us() -> Histogram {
        Histogram::new(&[1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8])
    }

    /// Rebuild a histogram from externally transported state (the metric
    /// federation path: a worker ships bucket deltas over the wire and the
    /// coordinator reconstitutes them here).
    ///
    /// # Errors
    ///
    /// Rejects non-increasing bounds, a counts length other than
    /// `bounds.len() + 1`, or a bucket total disagreeing with `count` —
    /// a corrupted or mis-encoded delta must not poison the registry.
    pub fn from_parts(
        bounds: Vec<f64>,
        counts: Vec<u64>,
        sum: f64,
        count: u64,
        min: f64,
        max: f64,
    ) -> Result<Histogram, String> {
        if bounds.is_empty() || bounds.windows(2).any(|w| w[0] >= w[1]) {
            return Err("histogram bounds must be non-empty and strictly increasing".into());
        }
        if counts.len() != bounds.len() + 1 {
            return Err(format!(
                "histogram counts length {} does not match bounds length {} + 1",
                counts.len(),
                bounds.len()
            ));
        }
        if counts.iter().sum::<u64>() != count {
            return Err("histogram bucket total disagrees with count".into());
        }
        let exemplars = vec![0; counts.len()];
        Ok(Histogram {
            bounds,
            counts,
            exemplars,
            sum,
            count,
            min,
            max,
        })
    }

    /// Fold `other`'s samples into `self`: bucket counts and sums add,
    /// min/max widen. Both histograms must share identical bounds.
    ///
    /// # Errors
    ///
    /// Rejects mismatched bucket bounds (merging across different
    /// bucketings would silently misplace samples).
    pub fn merge(&mut self, other: &Histogram) -> Result<(), String> {
        if self.bounds != other.bounds {
            return Err(format!(
                "histogram bounds mismatch: {:?} vs {:?}",
                self.bounds, other.bounds
            ));
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        // Exemplars are best-effort "a recent span in this bucket": the
        // incoming delta's exemplar (when it has one) is the fresher.
        for (mine, theirs) in self.exemplars.iter_mut().zip(&other.exemplars) {
            if *theirs != 0 {
                *mine = *theirs;
            }
        }
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }

    /// Record one sample.
    pub fn observe(&mut self, value: f64) {
        self.bucket_add(value);
    }

    /// Record one sample and remember `span_id` as the containing
    /// bucket's exemplar (latest wins; 0 leaves the exemplar untouched).
    pub fn observe_with_exemplar(&mut self, value: f64, span_id: u64) {
        let idx = self.bucket_add(value);
        if span_id != 0 {
            self.exemplars[idx] = span_id;
        }
    }

    fn bucket_add(&mut self, value: f64) -> usize {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        idx
    }

    /// Upper bounds of the finite buckets.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries, last = overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Per-bucket exemplar span ids (`bounds.len() + 1` entries, 0 =
    /// none).
    pub fn exemplars(&self) -> &[u64] {
        &self.exemplars
    }

    /// Total samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) by linear interpolation
    /// within the containing bucket.
    ///
    /// The target rank `q * count` is located by walking the cumulative
    /// bucket counts; within that bucket samples are assumed uniform
    /// between its lower and upper edges. Edges are tightened by the true
    /// `min`/`max`, which also bounds the otherwise-open first and
    /// overflow buckets. Returns 0.0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if rank <= (cum + c) as f64 {
                let lower = if i == 0 {
                    self.min
                } else {
                    self.bounds[i - 1].max(self.min)
                };
                let upper = if i == self.bounds.len() {
                    self.max
                } else {
                    self.bounds[i].min(self.max)
                };
                let frac = ((rank - cum as f64) / c as f64).clamp(0.0, 1.0);
                return lower + frac * (upper - lower);
            }
            cum += c;
        }
        self.max
    }
}

#[derive(Debug, Default)]
struct RegistryState {
    counters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Thread-safe aggregate store of counters, gauges and histograms.
///
/// The crate keeps one global registry (see [`registry`](crate::registry));
/// tests can build private ones for isolation.
#[derive(Debug, Default)]
pub struct Registry {
    state: Mutex<RegistryState>,
}

/// Point-in-time copy of a registry's contents.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter totals, sorted by key.
    pub counters: Vec<(String, f64)>,
    /// Latest gauge values, sorted by key.
    pub gauges: Vec<(String, f64)>,
    /// Histogram states, sorted by key.
    pub histograms: Vec<(String, Histogram)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Add `delta` to the counter `name` (created at zero on first use).
    pub fn counter_add(&self, name: &str, delta: f64) {
        let mut s = crate::named_lock("obs.registry", &self.state);
        match s.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                s.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Current value of counter `name`.
    pub fn counter(&self, name: &str) -> f64 {
        crate::named_lock("obs.registry", &self.state)
            .counters
            .get(name)
            .copied()
            .unwrap_or(0.0)
    }

    /// Set the gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut s = crate::named_lock("obs.registry", &self.state);
        match s.gauges.get_mut(name) {
            Some(v) => *v = value,
            None => {
                s.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Latest value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        crate::named_lock("obs.registry", &self.state)
            .gauges
            .get(name)
            .copied()
    }

    /// Pre-register histogram `name` with explicit bucket bounds (replaces
    /// any previous registration and its samples).
    pub fn register_histogram(&self, name: &str, bounds: &[f64]) {
        crate::named_lock("obs.registry", &self.state)
            .histograms
            .insert(name.to_string(), Histogram::new(bounds));
    }

    /// Record one sample into histogram `name`. An unregistered histogram
    /// is created with the [`Histogram::default_us`] buckets.
    pub fn observe(&self, name: &str, value: f64) {
        let mut s = crate::named_lock("obs.registry", &self.state);
        s.histograms
            .entry(name.to_string())
            .or_insert_with(Histogram::default_us)
            .observe(value);
    }

    /// Record one sample into histogram `name`, remembering `span_id` as
    /// the containing bucket's exemplar (see
    /// [`Histogram::observe_with_exemplar`]).
    pub fn observe_with_exemplar(&self, name: &str, value: f64, span_id: u64) {
        let mut s = crate::named_lock("obs.registry", &self.state);
        s.histograms
            .entry(name.to_string())
            .or_insert_with(Histogram::default_us)
            .observe_with_exemplar(value, span_id);
    }

    /// Merge an externally transported histogram into histogram `name`
    /// (created as a copy of `delta` on first sight). The metric-federation
    /// ingest path: bucket deltas arriving on a Heartbeat fold in here.
    ///
    /// # Errors
    ///
    /// Propagates a bounds mismatch from [`Histogram::merge`].
    pub fn merge_histogram(&self, name: &str, delta: &Histogram) -> Result<(), String> {
        let mut s = crate::named_lock("obs.registry", &self.state);
        match s.histograms.get_mut(name) {
            Some(h) => h.merge(delta),
            None => {
                s.histograms.insert(name.to_string(), delta.clone());
                Ok(())
            }
        }
    }

    /// A copy of histogram `name`, if any samples or a registration exist.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        crate::named_lock("obs.registry", &self.state)
            .histograms
            .get(name)
            .cloned()
    }

    /// Copy out everything.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let s = crate::named_lock("obs.registry", &self.state);
        MetricsSnapshot {
            counters: s.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: s.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: s
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Drop every metric (test isolation).
    pub fn clear(&self) {
        *crate::named_lock("obs.registry", &self.state) = RegistryState::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let r = Registry::new();
        r.counter_add("skipped", 3.0);
        r.counter_add("skipped", 2.0);
        assert_eq!(r.counter("skipped"), 5.0);
        assert_eq!(r.counter("absent"), 0.0);
        r.gauge_set("sst", 10.0);
        r.gauge_set("sst", 7.0);
        assert_eq!(r.gauge("sst"), Some(7.0));
        assert_eq!(r.gauge("absent"), None);
    }

    #[test]
    fn histogram_bucketing_is_inclusive_upper() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 1.5, 10.0, 99.0, 1000.0] {
            h.observe(v);
        }
        // (-inf,1]: {0.5, 1.0}; (1,10]: {1.5, 10.0}; (10,100]: {99.0};
        // overflow: {1000.0}.
        assert_eq!(h.counts(), &[2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 1000.0);
        assert!((h.mean() - 1112.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[1.0, 1.0]);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let mut h = Histogram::new(&[10.0, 20.0, 40.0]);
        for v in [5.0, 15.0, 25.0, 35.0, 100.0] {
            h.observe(v);
        }
        // Buckets: (-inf,10]={5}, (10,20]={15}, (20,40]={25,35},
        // overflow={100}; min=5, max=100.
        // q=0.5 -> rank 2.5, halfway through cum=2: 0.25 into (20,40] = 25.
        assert!((h.quantile(0.5) - 25.0).abs() < 1e-9);
        // q=0.95 -> rank 4.75, 0.75 into the overflow bucket [40,100] = 85.
        assert!((h.quantile(0.95) - 85.0).abs() < 1e-9);
        // Extremes clamp to the observed min/max.
        assert!((h.quantile(0.0) - 5.0).abs() < 1e-9);
        assert!((h.quantile(1.0) - 100.0).abs() < 1e-9);
        // Out-of-range q clamps.
        assert!((h.quantile(2.0) - 100.0).abs() < 1e-9);
        assert_eq!(Histogram::default_us().quantile(0.5), 0.0);
    }

    #[test]
    fn histogram_merge_folds_counts_and_extremes() {
        let mut a = Histogram::new(&[10.0, 100.0]);
        a.observe(5.0);
        a.observe(50.0);
        let mut b = Histogram::new(&[10.0, 100.0]);
        b.observe(500.0);
        b.observe(7.0);
        a.merge(&b).unwrap();
        assert_eq!(a.counts(), &[2, 1, 1]);
        assert_eq!(a.count(), 4);
        assert!((a.sum() - 562.0).abs() < 1e-9);
        assert_eq!(a.min(), 5.0);
        assert_eq!(a.max(), 500.0);
        // Mismatched bounds refuse to merge.
        let other = Histogram::new(&[1.0, 2.0]);
        assert!(a.merge(&other).is_err());
    }

    #[test]
    fn from_parts_validates_transported_state() {
        let h = Histogram::from_parts(vec![1.0, 10.0], vec![1, 2, 0], 7.5, 3, 0.5, 9.0).unwrap();
        assert_eq!(h.counts(), &[1, 2, 0]);
        assert_eq!(h.count(), 3);
        assert!(Histogram::from_parts(vec![10.0, 1.0], vec![0, 0, 0], 0.0, 0, 0.0, 0.0).is_err());
        assert!(Histogram::from_parts(vec![1.0], vec![0], 0.0, 0, 0.0, 0.0).is_err());
        assert!(Histogram::from_parts(vec![1.0], vec![1, 0], 0.0, 2, 0.0, 0.0).is_err());
    }

    #[test]
    fn registry_merge_histogram_creates_then_folds() {
        let r = Registry::new();
        let delta =
            Histogram::from_parts(vec![1.0, 10.0], vec![0, 1, 0], 5.0, 1, 5.0, 5.0).unwrap();
        r.merge_histogram("fed{worker=3}", &delta).unwrap();
        r.merge_histogram("fed{worker=3}", &delta).unwrap();
        let h = r.histogram("fed{worker=3}").unwrap();
        assert_eq!(h.count(), 2);
        assert!((h.sum() - 10.0).abs() < 1e-9);
        let bad = Histogram::new(&[2.0]);
        assert!(r.merge_histogram("fed{worker=3}", &bad).is_err());
    }

    #[test]
    fn exemplars_track_the_latest_span_per_bucket() {
        let mut h = Histogram::new(&[10.0, 100.0]);
        h.observe(5.0); // plain observe leaves no exemplar
        h.observe_with_exemplar(7.0, 41);
        h.observe_with_exemplar(3.0, 42); // same bucket: latest wins
        h.observe_with_exemplar(500.0, 99); // overflow bucket
        h.observe_with_exemplar(50.0, 0); // id 0 = "no exemplar"
        assert_eq!(h.exemplars(), &[42, 0, 99]);
        assert_eq!(h.count(), 5);

        // Merge prefers the incoming delta's exemplars where present.
        let mut other = Histogram::new(&[10.0, 100.0]);
        other.observe_with_exemplar(80.0, 7);
        h.merge(&other).unwrap();
        assert_eq!(h.exemplars(), &[42, 7, 99]);

        // Transported state starts exemplar-free.
        let rebuilt =
            Histogram::from_parts(vec![10.0, 100.0], vec![1, 0, 0], 5.0, 1, 5.0, 5.0).unwrap();
        assert_eq!(rebuilt.exemplars(), &[0, 0, 0]);

        // The registry path reaches the same machinery.
        let r = Registry::new();
        r.observe_with_exemplar("ex.wall_us", 50.0, 1234);
        let snap = r.histogram("ex.wall_us").unwrap();
        assert!(snap.exemplars().contains(&1234));
    }

    #[test]
    fn labeled_key_format() {
        assert_eq!(
            labeled("memprof.peak_bytes", "category", "weights"),
            "memprof.peak_bytes{category=weights}"
        );
    }

    #[test]
    fn snapshot_and_clear() {
        let r = Registry::new();
        r.counter_add("a", 1.0);
        r.observe("h", 5.0);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("a".to_string(), 1.0)]);
        assert_eq!(snap.histograms.len(), 1);
        r.clear();
        assert!(r.snapshot().counters.is_empty());
    }
}
