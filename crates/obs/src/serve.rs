//! Zero-dependency live telemetry endpoint.
//!
//! [`MetricsServer::bind`] starts an [`HttpServer`](crate::HttpServer)
//! on the [`global_router`](crate::global_router), whose standard routes
//! answer:
//!
//! * `GET /metrics` — the global registry in Prometheus text exposition
//!   format (`text/plain; version=0.0.4`), counters/gauges as single
//!   samples and histograms as cumulative `_bucket`/`_sum`/`_count`
//!   series;
//! * `GET /metrics.json` — the same snapshot as JSON, with derived
//!   mean/p50/p95/p99 per histogram and, where recorded, per-bucket
//!   exemplar span ids;
//! * `GET /profile` — the continuous profiler's collapsed-stack text
//!   (pipe into `flamegraph.pl`); `GET /profile.json` adds sampler
//!   metadata — see [`profile`](crate::profile);
//! * `GET /cluster` — a live worker table (JSON) when a cluster
//!   coordinator holds a scoped `GET /cluster` registration on the
//!   global router; `{"workers":[]}` otherwise;
//! * `GET /healthz` — liveness probe.
//!
//! Other crates extend the same surface by registering routes on the
//! global router (the serving gateway adds `POST /v1/predict` and
//! `GET /v1/tenants`), so one bound port serves every endpoint.
//!
//! The server installs a [`NullSink`](crate::NullSink) so the registry
//! aggregates even when no other sink is active, and removes it (and the
//! listener thread) on drop. Binding is opt-in via the
//! `SKIPPER_OBS_ADDR` environment variable — see [`serve_from_env`]:
//!
//! ```text
//! SKIPPER_OBS_ADDR=127.0.0.1:9184 cargo run --release --bin trace_training
//! curl http://127.0.0.1:9184/metrics
//! ```

use crate::metrics::{Histogram, MetricsSnapshot};
use crate::router::{global_router, HttpServer};
use crate::sink::NullSink;
use crate::SinkId;
use std::net::SocketAddr;

/// Environment variable holding the listen address (`host:port`).
pub const ADDR_ENV: &str = "SKIPPER_OBS_ADDR";

/// A running metrics endpoint; dropping it stops the listener thread and
/// removes the registry-enabling sink.
#[derive(Debug)]
pub struct MetricsServer {
    server: HttpServer,
    sink_id: Option<SinkId>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9184"`; port 0 picks a free port) and
    /// start serving the global router (standard observability routes plus
    /// whatever other crates have registered).
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn bind(addr: &str) -> std::io::Result<MetricsServer> {
        let server = HttpServer::bind(addr, global_router())?;
        let sink_id = Some(crate::add_sink(Box::new(NullSink::new())));
        Ok(MetricsServer { server, sink_id })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if let Some(id) = self.sink_id.take() {
            crate::remove_sink(id);
        }
    }
}

/// Start a [`MetricsServer`] if `SKIPPER_OBS_ADDR` is set.
///
/// Logs one warning and returns `None` if the bind fails (a busy port
/// should not take the training run down with it).
pub fn serve_from_env() -> Option<MetricsServer> {
    let addr = std::env::var(ADDR_ENV).ok()?;
    if addr.is_empty() {
        return None;
    }
    match MetricsServer::bind(&addr) {
        Ok(server) => {
            eprintln!(
                "skipper-obs: serving metrics on http://{}/metrics",
                server.addr()
            );
            Some(server)
        }
        Err(err) => {
            eprintln!("skipper-obs: cannot bind {ADDR_ENV}={addr}: {err}");
            None
        }
    }
}

/// Split a registry key of the form `name{key=value}` into the family name
/// and an optional rendered Prometheus label set.
fn split_labels(key: &str) -> (String, String) {
    let Some(open) = key.find('{') else {
        return (sanitize(key), String::new());
    };
    let name = sanitize(&key[..open]);
    let inner = key[open..].trim_start_matches('{').trim_end_matches('}');
    let mut labels = Vec::new();
    for pair in inner.split(',') {
        let mut it = pair.splitn(2, '=');
        let (Some(k), Some(v)) = (it.next(), it.next()) else {
            continue;
        };
        labels.push(format!(
            "{}=\"{}\"",
            sanitize(k.trim()),
            escape_label_value(v.trim())
        ));
    }
    if labels.is_empty() {
        (name, String::new())
    } else {
        (name, format!("{{{}}}", labels.join(",")))
    }
}

/// Escape a Prometheus label value: backslash first (escaping it last
/// would re-escape the escapes), then double-quote, then newline — the
/// three characters the text exposition format reserves.
fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Map a metric name onto the Prometheus charset `[a-zA-Z0-9_:]`.
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

/// Render a [`MetricsSnapshot`] in Prometheus text exposition format.
///
/// Keys sharing a family name (labelled variants sort adjacently in the
/// snapshot) get one `# TYPE` line.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    for (key, value) in &snap.counters {
        let (name, labels) = split_labels(key);
        if name != last_family {
            out.push_str(&format!("# TYPE {name} counter\n"));
            last_family = name.clone();
        }
        out.push_str(&format!("{name}{labels} {}\n", fmt_value(*value)));
    }
    last_family.clear();
    for (key, value) in &snap.gauges {
        let (name, labels) = split_labels(key);
        if name != last_family {
            out.push_str(&format!("# TYPE {name} gauge\n"));
            last_family = name.clone();
        }
        out.push_str(&format!("{name}{labels} {}\n", fmt_value(*value)));
    }
    last_family.clear();
    for (key, hist) in &snap.histograms {
        let (name, labels) = split_labels(key);
        if name != last_family {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            last_family = name.clone();
        }
        // Re-open the label set to append `le`.
        let base = labels.trim_end_matches('}');
        let mut cumulative = 0u64;
        for (bound, count) in hist.bounds().iter().zip(hist.counts()) {
            cumulative += count;
            let le = if base.is_empty() {
                format!("{{le=\"{bound}\"}}")
            } else {
                format!("{base},le=\"{bound}\"}}")
            };
            out.push_str(&format!("{name}_bucket{le} {cumulative}\n"));
        }
        let inf = if base.is_empty() {
            "{le=\"+Inf\"}".to_string()
        } else {
            format!("{base},le=\"+Inf\"}}")
        };
        out.push_str(&format!("{name}_bucket{inf} {}\n", hist.count()));
        out.push_str(&format!("{name}_sum{labels} {}\n", fmt_value(hist.sum())));
        out.push_str(&format!("{name}_count{labels} {}\n", hist.count()));
    }
    out
}

fn push_histogram_json(out: &mut String, hist: &Histogram) {
    out.push_str(&format!(
        "{{\"count\":{},\"sum\":{},\"mean\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}",
        hist.count(),
        json_f64(hist.sum()),
        json_f64(hist.mean()),
        json_f64(if hist.count() == 0 { 0.0 } else { hist.min() }),
        json_f64(if hist.count() == 0 { 0.0 } else { hist.max() }),
        json_f64(hist.quantile(0.50)),
        json_f64(hist.quantile(0.95)),
        json_f64(hist.quantile(0.99)),
    ));
    // Exemplars: bucket upper bound → span id of the last sample that
    // landed there, so a bad bucket links straight to a trace span. Only
    // buckets that have one are rendered.
    if hist.exemplars().iter().any(|&e| e != 0) {
        out.push_str(",\"exemplars\":{");
        let mut first = true;
        for (i, &span_id) in hist.exemplars().iter().enumerate() {
            if span_id == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let le = hist
                .bounds()
                .get(i)
                .map_or("+Inf".to_string(), |b| format!("{b}"));
            crate::push_json_string(out, &le);
            out.push(':');
            out.push_str(&span_id.to_string());
        }
        out.push('}');
    }
    out.push('}');
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Render a [`MetricsSnapshot`] as a JSON object with `counters`, `gauges`
/// and `histograms` (each histogram carrying derived percentiles).
pub fn snapshot_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (key, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        crate::push_json_string(&mut out, key);
        out.push(':');
        out.push_str(&json_f64(*value));
    }
    out.push_str("},\"gauges\":{");
    for (i, (key, value)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        crate::push_json_string(&mut out, key);
        out.push(':');
        out.push_str(&json_f64(*value));
    }
    out.push_str("},\"histograms\":{");
    for (i, (key, hist)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        crate::push_json_string(&mut out, key);
        out.push(':');
        push_histogram_json(&mut out, hist);
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::Response;
    use crate::Registry;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn prometheus_text_renders_all_metric_kinds() {
        let r = Registry::new();
        r.counter_add("serve_test.skipped", 7.0);
        r.gauge_set("serve_test.queue_depth{worker=0}", 3.0);
        r.gauge_set("serve_test.queue_depth{worker=1}", 5.0);
        r.register_histogram("serve_test.wall_us", &[10.0, 100.0]);
        r.observe("serve_test.wall_us", 50.0);
        r.observe("serve_test.wall_us", 5000.0);
        let text = prometheus_text(&r.snapshot());
        assert!(text.contains("# TYPE serve_test_skipped counter\n"));
        assert!(text.contains("serve_test_skipped 7\n"));
        // One TYPE line for the two labelled gauge series.
        assert_eq!(
            text.matches("# TYPE serve_test_queue_depth gauge").count(),
            1
        );
        assert!(text.contains("serve_test_queue_depth{worker=\"0\"} 3\n"));
        assert!(text.contains("serve_test_queue_depth{worker=\"1\"} 5\n"));
        // Histogram: cumulative buckets + +Inf + sum + count.
        assert!(text.contains("# TYPE serve_test_wall_us histogram\n"));
        assert!(text.contains("serve_test_wall_us_bucket{le=\"10\"} 0\n"));
        assert!(text.contains("serve_test_wall_us_bucket{le=\"100\"} 1\n"));
        assert!(text.contains("serve_test_wall_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("serve_test_wall_us_sum 5050\n"));
        assert!(text.contains("serve_test_wall_us_count 2\n"));
    }

    #[test]
    fn label_values_escape_backslash_quote_and_newline() {
        let r = Registry::new();
        // A worker id that tries every reserved character: backslash,
        // double-quote, newline. The backslash must come out doubled, not
        // fused with the quote escape.
        r.counter_add("serve_esc.frames{worker=a\\b\"c\nd}", 2.0);
        r.counter_add("serve_esc.frames{worker=7}", 4.0);
        let text = prometheus_text(&r.snapshot());
        assert!(
            text.contains("serve_esc_frames{worker=\"a\\\\b\\\"c\\nd\"} 2\n"),
            "got: {text}"
        );
        assert!(text.contains("serve_esc_frames{worker=\"7\"} 4\n"));
        // The two labelled series share one TYPE line.
        assert_eq!(text.matches("# TYPE serve_esc_frames counter").count(), 1);
    }

    #[test]
    fn federated_worker_labels_render_as_series() {
        let r = Registry::new();
        r.counter_add("serve_fed.heartbeats{worker=1}", 3.0);
        r.counter_add("serve_fed.heartbeats{worker=2}", 5.0);
        r.gauge_set("serve_fed.clock_offset_us{worker=2}", -12.0);
        let text = prometheus_text(&r.snapshot());
        assert!(text.contains("serve_fed_heartbeats{worker=\"1\"} 3\n"));
        assert!(text.contains("serve_fed_heartbeats{worker=\"2\"} 5\n"));
        assert!(text.contains("serve_fed_clock_offset_us{worker=\"2\"} -12\n"));
    }

    #[test]
    fn cluster_endpoint_serves_scoped_registration() {
        let server = MetricsServer::bind("127.0.0.1:0").unwrap();

        // Wrong method on the route 405s; unknown path 404s. (The default
        // `/cluster` body is asserted by the router's own tests — another
        // test's coordinator could be shadowing it here.)
        let post = http_raw(server.addr(), "POST /cluster HTTP/1.1\r\n\r\n");
        assert!(post.starts_with("HTTP/1.1 405"), "got: {post}");
        let missing = http_get(server.addr(), "/cluster/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "got: {missing}");

        // A coordinator's scoped registration shadows the default table
        // while its guard lives...
        {
            let _guard = crate::global_router().register("GET", "/cluster", |_| {
                Response::ok_json("{\"workers\":[{\"id\":7,\"state\":\"idle\"}]}")
            });
            let body = http_get(server.addr(), "/cluster");
            assert!(body.contains("\"id\":7"), "got: {body}");
            assert!(body.contains("\"state\":\"idle\""));
        }
        // ...and drop restores the previous registration.
        let after = http_get(server.addr(), "/cluster");
        assert!(!after.contains("\"id\":7"), "got: {after}");
        assert!(after.starts_with("HTTP/1.1 200 OK"), "got: {after}");
    }

    #[test]
    fn snapshot_json_is_wellformed() {
        let r = Registry::new();
        r.counter_add("a.b", 1.0);
        r.observe("h", 3.0);
        let json = snapshot_json(&r.snapshot());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a.b\":1"));
        assert!(json.contains("\"p50\":"));
        // No exemplars recorded → no exemplars key.
        assert!(!json.contains("exemplars"));
    }

    #[test]
    fn snapshot_json_renders_exemplars_by_bucket_bound() {
        let r = Registry::new();
        r.register_histogram("exj.wall_us", &[10.0, 100.0]);
        r.observe_with_exemplar("exj.wall_us", 50.0, 77);
        r.observe_with_exemplar("exj.wall_us", 5000.0, 88);
        let json = snapshot_json(&r.snapshot());
        assert!(
            json.contains("\"exemplars\":{\"100\":77,\"+Inf\":88}"),
            "got: {json}"
        );
    }

    #[test]
    fn profile_endpoints_respond_and_parse() {
        let server = MetricsServer::bind("127.0.0.1:0").unwrap();

        let folded = http_get(server.addr(), "/profile");
        assert!(folded.starts_with("HTTP/1.1 200 OK"), "got: {folded}");
        // Whatever the (shared, possibly concurrently-sampled) profile
        // holds, every body line must be folded format: `frames count`.
        let body = folded.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
        for line in body.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("folded line has a count");
            assert!(!stack.is_empty(), "got: {line}");
            assert!(count.parse::<u64>().is_ok(), "got: {line}");
        }

        let json = http_get(server.addr(), "/profile.json");
        assert!(json.starts_with("HTTP/1.1 200 OK"), "got: {json}");
        let body = json.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
        assert!(body.starts_with('{') && body.trim_end().ends_with('}'));
        for key in ["\"hz\":", "\"ticks\":", "\"threads\":", "\"stacks\":{"] {
            assert!(body.contains(key), "missing {key} in {body}");
        }
    }

    fn http_raw(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn malformed_requests_get_4xx_and_serving_continues() {
        let server = MetricsServer::bind("127.0.0.1:0").unwrap();

        // No parseable request line → 400.
        let garbage = http_raw(server.addr(), "\r\n\r\n");
        assert!(garbage.starts_with("HTTP/1.1 400"), "got: {garbage}");

        // Truncated request line → 400.
        let short = http_raw(server.addr(), "GET\r\n\r\n");
        assert!(short.starts_with("HTTP/1.1 400"), "got: {short}");

        // Not HTTP at all → 400.
        let junk = http_raw(server.addr(), "SSH-2.0-OpenSSH_9.6\r\n\r\n");
        assert!(junk.starts_with("HTTP/1.1 400"), "got: {junk}");

        // Unsupported method on a GET-only route → 405.
        let post = http_raw(server.addr(), "POST /metrics HTTP/1.1\r\n\r\n");
        assert!(post.starts_with("HTTP/1.1 405"), "got: {post}");

        // The listener thread survived all of it and still answers.
        let health = http_get(server.addr(), "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "got: {health}");
    }

    #[test]
    fn server_serves_metrics_and_404s() {
        // Unique metric names: the global registry is shared with parallel
        // tests.
        crate::counter_add("serve_e2e.before_enable", 1.0); // dropped: disabled
        let server = MetricsServer::bind("127.0.0.1:0").unwrap();
        assert!(crate::enabled(), "server's NullSink must enable tracing");
        crate::counter_add("serve_e2e.requests", 2.0);
        crate::gauge_set("serve_e2e.depth{worker=0}", 4.0);
        crate::observe("serve_e2e.wall_us", 123.0);

        let metrics = http_get(server.addr(), "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"));
        assert!(metrics.contains("text/plain; version=0.0.4"));
        assert!(metrics.contains("serve_e2e_requests 2"));
        assert!(metrics.contains("serve_e2e_depth{worker=\"0\"} 4"));
        assert!(metrics.contains("serve_e2e_wall_us_count 1"));

        let json = http_get(server.addr(), "/metrics.json");
        assert!(json.starts_with("HTTP/1.1 200 OK"));
        assert!(json.contains("\"serve_e2e.requests\":2"));

        let health = http_get(server.addr(), "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"));

        let missing = http_get(server.addr(), "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));

        let addr = server.addr();
        drop(server);
        // The listener is gone (a fresh bind to the same port succeeds or
        // the connect fails; either way the thread exited without panic).
        let _ = TcpStream::connect(addr);
    }
}
