//! `skipper-obs`: structured tracing and metrics for the Skipper
//! workspace.
//!
//! The paper argues through measurement — per-timestep spike sums,
//! recompute-segment timing, peak memory by category. This crate makes the
//! training pipeline inspectable at that granularity:
//!
//! * **Spans** ([`span!`]) trace nested regions of work with monotonic
//!   microsecond timestamps and automatic parent/child nesting;
//! * **Metrics** ([`counter_add`], [`gauge_set`], [`observe`]) aggregate
//!   counters, gauges and fixed-bucket histograms in a global [`Registry`];
//! * **Sinks** receive every event: [`RingBufferSink`] (tests, summary
//!   tables), [`JsonlSink`] (offline analysis), [`ChromeTraceSink`]
//!   (open the file in Perfetto / `chrome://tracing`), [`StderrSink`]
//!   (terminal logging behind the `SKIPPER_OBS` verbosity knob).
//!
//! Tracing is **off by default**: with no sinks installed, [`enabled`]
//! is false and every instrumentation site reduces to one relaxed atomic
//! load (the macros skip field construction entirely), keeping the
//! overhead on uninstrumented runs negligible. Metric-registry updates
//! are likewise gated on [`enabled`].
//!
//! The crate has **zero dependencies** so every other workspace crate —
//! including the low-level ones — can emit events without cycles.
//!
//! # Quickstart
//!
//! ```
//! // Install a ring sink (tracing turns on), trace some work, inspect it.
//! let (sink, handle) = skipper_obs::RingBufferSink::new(4096);
//! let sink_id = skipper_obs::add_sink(Box::new(sink));
//! {
//!     let _outer = skipper_obs::span!("iteration", iter = 1u64);
//!     let _inner = skipper_obs::span!("recompute_segment", c = 3usize);
//!     skipper_obs::counter_add("skipper.steps_skipped", 5.0);
//! }
//! skipper_obs::remove_sink(sink_id);
//! let events = handle.snapshot_current_thread();
//! assert!(events.len() >= 5); // 2 begins + 2 ends + 1 counter
//! ```

mod event;
mod metrics;
pub mod profile;
pub mod router;
pub mod serve;
mod sink;
mod span;
mod summary;
mod trace;
pub mod witness;

pub use event::{
    push_json_f64, push_json_fields, push_json_string, Event, EventKind, FieldValue, Fields, Level,
};
pub use metrics::{labeled, Histogram, MetricsSnapshot, Registry};
pub use profile::Profiler;
pub use router::{global_router, Handler, HttpServer, Request, Response, RouteGuard, Router};
pub use serve::{serve_from_env, MetricsServer};
pub use sink::{JsonlSink, NullSink, RingBufferSink, RingHandle, Sink, StderrSink};
pub use span::{current_span, namespace_span_ids, ContextGuard, SpanContext, SpanGuard};
pub use summary::{render_summary, span_stats, SpanStat};
pub use trace::{chrome_trace_json, write_chrome_trace, ChromeTraceSink};
pub use witness::{named_lock, publish_witness_metrics, witness_edges, NamedGuard};

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Clock and thread ids
// ---------------------------------------------------------------------------

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process-wide trace epoch (the first call into
/// this crate). Monotonic.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Small dense id of the calling thread (1, 2, 3, … in first-use order);
/// stable for the thread's lifetime. Used as the `tid` of every event.
pub fn current_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

// ---------------------------------------------------------------------------
// The collector: sinks + enabled flag + global registry
// ---------------------------------------------------------------------------

/// Handle for removing an installed sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkId(u64);

struct Collector {
    sinks: Mutex<Vec<(SinkId, Box<dyn Sink>)>>,
    next_id: AtomicU64,
}

static SINK_COUNT: AtomicUsize = AtomicUsize::new(0);

/// Lock a mutex, recovering from poisoning.
///
/// Telemetry state (sinks, the metrics registry, ring buffers) stays
/// valid under panic — every mutation is a single in-place update — so a
/// worker thread that panicked while holding a lock must not permanently
/// disable observability for every other thread. The engine's panic
/// propagation path in particular still wants the final flush.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| Collector {
        sinks: Mutex::new(Vec::new()),
        next_id: AtomicU64::new(1),
    })
}

/// Whether any sink is installed. The fast path every instrumentation site
/// checks first — one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    SINK_COUNT.load(Ordering::Relaxed) > 0
}

/// Install `sink`; tracing is enabled while at least one sink is
/// installed. Returns the id to pass to [`remove_sink`].
pub fn add_sink(sink: Box<dyn Sink>) -> SinkId {
    let c = collector();
    let id = SinkId(c.next_id.fetch_add(1, Ordering::Relaxed));
    let mut sinks = named_lock("obs.sinks", &c.sinks);
    sinks.push((id, sink));
    SINK_COUNT.store(sinks.len(), Ordering::Relaxed);
    id
}

/// Flush and uninstall the sink with `id`, returning it (None if already
/// removed).
pub fn remove_sink(id: SinkId) -> Option<Box<dyn Sink>> {
    let c = collector();
    let mut sinks = named_lock("obs.sinks", &c.sinks);
    let pos = sinks.iter().position(|(sid, _)| *sid == id)?;
    let (_, mut sink) = sinks.remove(pos);
    SINK_COUNT.store(sinks.len(), Ordering::Relaxed);
    drop(sinks);
    sink.flush();
    Some(sink)
}

/// Flush every installed sink.
pub fn flush() {
    let c = collector();
    for (_, sink) in named_lock("obs.sinks", &c.sinks).iter_mut() {
        // lint:allow(blocking): flush drains a bounded buffer to local disk; the guard must cover it so remove_sink cannot drop the sink mid-flush
        sink.flush();
    }
}

/// Flush and uninstall **every** sink, dropping each one.
///
/// File-backed sinks buffer ([`JsonlSink`] behind a `BufWriter`,
/// [`ChromeTraceSink`] until flush/drop), so a `main` that returns without
/// draining them leaves a truncated or empty trace on disk. Call this —
/// or hold a [`ShutdownGuard`] — at the end of every binary that installs
/// sinks. Tracing is disabled afterwards; it re-enables if a sink is
/// installed again.
pub fn shutdown() {
    let c = collector();
    let drained = {
        let mut sinks = named_lock("obs.sinks", &c.sinks);
        SINK_COUNT.store(0, Ordering::Relaxed);
        std::mem::take(&mut *sinks)
    };
    // Flush (and drop) outside the lock: a sink's flush may log or submit.
    for (_, mut sink) in drained {
        sink.flush();
    }
}

/// RAII wrapper: calls [`shutdown`] on drop. Hold one at the top of a
/// binary's `main` so sinks are flushed even on early return:
///
/// ```no_run
/// let _obs = skipper_obs::ShutdownGuard::new();
/// skipper_obs::init_from_env();
/// // ... work ...
/// ```
#[derive(Debug, Default)]
pub struct ShutdownGuard;

impl ShutdownGuard {
    /// A guard that shuts the collector down when dropped.
    pub fn new() -> ShutdownGuard {
        ShutdownGuard
    }
}

impl Drop for ShutdownGuard {
    fn drop(&mut self) {
        shutdown();
    }
}

/// Deliver `event` to every installed sink. Instrumentation normally goes
/// through [`span!`] / [`instant!`] / the metric helpers; this is the
/// escape hatch for custom event shapes.
pub fn submit(event: Event) {
    if !enabled() {
        return;
    }
    let c = collector();
    for (_, sink) in named_lock("obs.sinks", &c.sinks).iter_mut() {
        sink.record(&event);
    }
}

/// The global metrics registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

// ---------------------------------------------------------------------------
// Convenience emitters
// ---------------------------------------------------------------------------

/// Emit a point-in-time event.
pub fn instant(name: &'static str, level: Level, fields: Fields) {
    submit(Event {
        name: name.into(),
        level,
        ts_us: now_us(),
        tid: current_tid(),
        kind: EventKind::Instant,
        fields,
    });
}

/// Add `delta` to counter `name` in the global registry and notify sinks.
/// No-op while tracing is disabled.
pub fn counter_add(name: &str, delta: f64) {
    if !enabled() {
        return;
    }
    registry().counter_add(name, delta);
    submit(Event {
        name: name.to_string().into(),
        level: Level::Debug,
        ts_us: now_us(),
        tid: current_tid(),
        kind: EventKind::Counter { delta },
        fields: Vec::new(),
    });
}

/// Set gauge `name` to `value` in the global registry and notify sinks.
/// No-op while tracing is disabled.
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    registry().gauge_set(name, value);
    submit(Event {
        name: name.to_string().into(),
        level: Level::Debug,
        ts_us: now_us(),
        tid: current_tid(),
        kind: EventKind::Gauge { value },
        fields: Vec::new(),
    });
}

/// Record `value` into histogram `name` in the global registry and notify
/// sinks. No-op while tracing is disabled.
pub fn observe(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    registry().observe(name, value);
    submit(Event {
        name: name.to_string().into(),
        level: Level::Trace,
        ts_us: now_us(),
        tid: current_tid(),
        kind: EventKind::Observe { value },
        fields: Vec::new(),
    });
}

/// Record `value` into histogram `name`, remembering `span_id` as the
/// containing bucket's exemplar (0 = no exemplar), and notify sinks.
/// No-op while tracing is disabled. The serving gateway uses this to link
/// each phase-latency bucket to the last request span that landed in it.
pub fn observe_with_exemplar(name: &str, value: f64, span_id: u64) {
    if !enabled() {
        return;
    }
    registry().observe_with_exemplar(name, value, span_id);
    submit(Event {
        name: name.to_string().into(),
        level: Level::Trace,
        ts_us: now_us(),
        tid: current_tid(),
        kind: EventKind::Observe { value },
        fields: Vec::new(),
    });
}

/// Install a [`StderrSink`] according to the `SKIPPER_OBS` environment
/// variable — the one verbosity knob for `cargo run` output:
///
/// * unset / `off` / `0` / `none` / `false`: no sink, tracing stays
///   disabled;
/// * `warn` / `info` / `debug` / `trace` (any case): log that level and
///   above;
/// * `1` / `on` / `true`: shorthand for `info`;
/// * anything else: one warning on stderr, then `info`.
///
/// Returns the sink id when one was installed.
pub fn init_from_env() -> Option<SinkId> {
    let value = std::env::var("SKIPPER_OBS").ok()?;
    match value.to_ascii_lowercase().as_str() {
        "" | "off" | "0" | "none" | "false" => None,
        "1" | "on" | "true" => Some(add_sink(Box::new(StderrSink::new(Level::Info)))),
        other => {
            let level = Level::parse(other).unwrap_or_else(|| {
                eprintln!(
                    "skipper-obs: unknown SKIPPER_OBS level {value:?} \
                     (expected off|warn|info|debug|trace); defaulting to info"
                );
                Level::Info
            });
            Some(add_sink(Box::new(StderrSink::new(level))))
        }
    }
}

/// Install a [`JsonlSink`] writing to the file named by the
/// `SKIPPER_OBS_JSONL` environment variable (truncating it), so any
/// binary — most usefully a remote `skipper_worker` — can capture its
/// event stream for the cluster trace stitcher without code changes:
///
/// ```text
/// SKIPPER_OBS_JSONL=results/obs_worker1.jsonl skipper_worker --id 1
/// ```
///
/// Logs one warning and returns `None` when the file cannot be created
/// (a bad path must not take the worker down).
pub fn jsonl_from_env() -> Option<SinkId> {
    let path = std::env::var("SKIPPER_OBS_JSONL").ok()?;
    if path.trim().is_empty() {
        return None;
    }
    if let Some(parent) = std::path::Path::new(&path).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match JsonlSink::create(&path) {
        Ok(sink) => Some(add_sink(Box::new(sink))),
        Err(err) => {
            eprintln!("skipper-obs: cannot create SKIPPER_OBS_JSONL={path}: {err}");
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Open a traced span; the returned [`SpanGuard`] closes it on drop.
///
/// ```
/// let _span = skipper_obs::span!("recompute_segment", c = 3usize, start = 10usize);
/// ```
///
/// While tracing is disabled the field expressions are not evaluated.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        if $crate::enabled() {
            $crate::SpanGuard::enter($name, ::std::vec::Vec::new())
        } else {
            $crate::SpanGuard::disabled()
        }
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::SpanGuard::enter(
                $name,
                <[_]>::into_vec(::std::boxed::Box::new([
                    $((stringify!($key), $crate::FieldValue::from($value))),+
                ])),
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

/// Emit a point-in-time event with fields.
///
/// ```
/// skipper_obs::instant!(skipper_obs::Level::Info, "governor.action", iteration = 7u64);
/// ```
///
/// While tracing is disabled the field expressions are not evaluated.
#[macro_export]
macro_rules! instant {
    ($level:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::instant(
                $name,
                $level,
                <[_]>::into_vec(::std::boxed::Box::new([
                    $((stringify!($key), $crate::FieldValue::from($value))),*
                ])),
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All global-state behaviour in one test: parallel test threads share
    /// the collector, so a single linear scenario (filtered by tid) keeps
    /// assertions race-free.
    #[test]
    fn collector_end_to_end() {
        let (ring, handle) = RingBufferSink::new(1024);
        let id = add_sink(Box::new(ring));
        assert!(enabled());

        {
            let outer = span!("outer", t = 1usize);
            assert!(outer.is_recording());
            assert_eq!(current_span(), Some(outer.id()));
            {
                let inner = span!("inner");
                assert_eq!(current_span(), Some(inner.id()));
            }
            instant!(Level::Info, "tick", value = 3.5f64);
        }
        counter_add("test.counter", 2.0);
        gauge_set("test.gauge", 9.0);
        observe("test.hist", 123.0);

        assert!(remove_sink(id).is_some());
        assert!(remove_sink(id).is_none());

        let events = handle.snapshot_current_thread();
        let begins: Vec<&Event> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SpanBegin { .. }))
            .collect();
        assert_eq!(begins.len(), 2);
        // Nesting: inner's parent is outer's id.
        let EventKind::SpanBegin {
            id: outer_id,
            parent: None,
        } = begins[0].kind
        else {
            panic!("outer span must be a root: {:?}", begins[0]);
        };
        let EventKind::SpanBegin {
            parent: Some(parent),
            ..
        } = begins[1].kind
        else {
            panic!("inner span must have a parent: {:?}", begins[1]);
        };
        assert_eq!(parent, outer_id);
        assert_eq!(begins[0].fields, vec![("t", FieldValue::U64(1))]);
        // Ends close innermost-first.
        let ends: Vec<&Event> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SpanEnd { .. }))
            .collect();
        assert_eq!(ends.len(), 2);
        assert_eq!(ends[0].name, "inner");
        assert_eq!(ends[1].name, "outer");
        // Instant + metrics arrived.
        assert!(events
            .iter()
            .any(|e| e.name == "tick" && e.kind == EventKind::Instant));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Counter { delta } if delta == 2.0)));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Gauge { value } if value == 9.0)));
        // Registry aggregated.
        assert!(registry().counter("test.counter") >= 2.0);
        assert_eq!(registry().gauge("test.gauge"), Some(9.0));
        assert!(registry().histogram("test.hist").unwrap().count() >= 1);
        // Timestamps are monotone within the capture.
        assert!(events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    }

    #[test]
    fn disabled_macros_do_not_evaluate_fields() {
        // This test must not install sinks. Another test's sink may be
        // concurrently installed; tolerate that by only asserting when
        // tracing is genuinely off.
        if enabled() {
            return;
        }
        let mut evaluated = false;
        let guard = span!(
            "quiet",
            x = {
                evaluated = true;
                1usize
            }
        );
        assert!(!guard.is_recording());
        drop(guard);
        instant!(
            Level::Info,
            "quiet",
            x = {
                evaluated = true;
                2usize
            }
        );
        assert!(!evaluated, "disabled macros must skip field expressions");
    }

    #[test]
    fn out_of_order_span_drop_is_repaired_and_counted() {
        let (sink, _handle) = RingBufferSink::new(64);
        let id = add_sink(Box::new(sink));
        let before = registry().counter("obs.span_stack_repair");
        let outer = span!("repair_outer");
        let inner = span!("repair_inner");
        let inner_id = inner.id();
        // Dropping the *outer* guard first used to pop `inner`'s id and
        // leave the stack corrupted; now it removes its own id and counts
        // the repair.
        drop(outer);
        assert_eq!(current_span(), Some(inner_id));
        drop(inner); // LIFO again: no additional repair
        assert_ne!(current_span(), Some(inner_id));
        let after = registry().counter("obs.span_stack_repair");
        assert!(
            after >= before + 1.0,
            "non-LIFO drop must bump obs.span_stack_repair ({before} -> {after})"
        );
        remove_sink(id);
    }

    #[test]
    fn tids_are_distinct_across_threads() {
        let mine = current_tid();
        let other = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(mine, other);
        assert_eq!(mine, current_tid());
    }
}
