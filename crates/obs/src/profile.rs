//! Continuous profiling: a wall-clock sampler over the per-thread span
//! stacks.
//!
//! Every thread that opens a span shares its stack (see
//! [`span`](crate::SpanGuard)) with a global thread registry; a
//! [`Profiler`] thread wakes `hz` times per second, snapshots every
//! registered stack, and folds each non-empty one into a collapsed-stack
//! count — the [Brendan Gregg folded format] that `flamegraph.pl` and
//! speedscope consume directly:
//!
//! ```text
//! iteration;forward;lif_forward 412
//! iteration;recompute_segment 96
//! ```
//!
//! The accumulated profile is exported three ways:
//!
//! * `GET /profile` on any [`Router`](crate::Router) built with the
//!   standard routes — [`folded_text`] as `text/plain`;
//! * `GET /profile.json` — [`profile_json`] with sampler metadata;
//! * `results/profile_<bench>.folded`, written by the bench harness when
//!   its run sampled anything.
//!
//! Sampling is *opt-in* (`SKIPPER_PROF_HZ` or an explicit
//! [`Profiler::start`]); with no sampler running the only cost the
//! machinery adds is the per-thread stack's mutex, which is uncontended
//! on the span path and only ever touched while tracing is enabled.
//!
//! [Brendan Gregg folded format]: https://www.brendangregg.com/flamegraphs.html

use crate::span::SharedStack;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Environment variable selecting the sampling rate in Hz; unset (or 0 /
/// non-numeric) leaves the sampler off.
pub const HZ_ENV: &str = "SKIPPER_PROF_HZ";

/// Sampling rates outside this range are clamped: below ~1 Hz a profile
/// never accumulates, above 10 kHz the sampler would contend with the
/// threads it measures.
const MIN_HZ: f64 = 1.0;
const MAX_HZ: f64 = 10_000.0;

fn threads() -> &'static Mutex<Vec<SharedStack>> {
    static THREADS: OnceLock<Mutex<Vec<SharedStack>>> = OnceLock::new();
    THREADS.get_or_init(|| Mutex::new(Vec::new()))
}

pub(crate) fn register_thread(stack: SharedStack) {
    crate::lock_unpoisoned(threads()).push(stack);
}

pub(crate) fn deregister_thread(stack: &SharedStack) {
    crate::lock_unpoisoned(threads()).retain(|e| !Arc::ptr_eq(e, stack));
}

/// Force the calling thread into the sampler's thread census even before
/// its first span opens. Long-lived worker threads (the engine pool, a
/// cluster worker loop) call this at start-up so a profile taken early in
/// their life still counts them.
pub fn touch_thread() {
    crate::span::touch_thread_stack();
}

/// Threads currently registered with the sampler.
pub fn registered_threads() -> usize {
    crate::lock_unpoisoned(threads()).len()
}

#[derive(Default)]
struct ProfileState {
    /// Folded stack → number of samples it was observed in. BTreeMap so
    /// [`folded_text`] is deterministic.
    folded: BTreeMap<String, u64>,
    /// Sampler wake-ups taken.
    ticks: u64,
    /// Wake-ups where no thread had an open span.
    idle_ticks: u64,
    /// Rate of the most recent sampler, Hz (0 when never started).
    hz: f64,
}

fn state() -> &'static Mutex<ProfileState> {
    static STATE: OnceLock<Mutex<ProfileState>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(ProfileState::default()))
}

/// Clone the census under its lock. A separate fn keeps the census
/// guard's lifetime visibly disjoint from everything the caller locks
/// next — the census is a leaf in the lock order.
fn census_snapshot() -> Vec<SharedStack> {
    crate::lock_unpoisoned(threads()).clone()
}

/// Take one sample: snapshot every registered stack and fold the
/// non-empty ones into the accumulated profile. The census lock is
/// dropped before any per-thread stack (or the profile state) is locked
/// — the `Arc`s are cloned out first — so the sampler never nests the
/// census under another lock.
fn sample_once() {
    let entries = census_snapshot();
    let mut stacks: Vec<String> = Vec::new();
    {
        for entry in entries.iter() {
            let stack = crate::lock_unpoisoned(entry);
            if stack.is_empty() {
                continue;
            }
            let mut line = String::new();
            for (i, &(_, name)) in stack.iter().enumerate() {
                if i > 0 {
                    line.push(';');
                }
                line.push_str(name);
            }
            stacks.push(line);
        }
    }
    let mut s = crate::lock_unpoisoned(state());
    s.ticks += 1;
    if stacks.is_empty() {
        s.idle_ticks += 1;
    }
    for line in stacks {
        *s.folded.entry(line).or_insert(0) += 1;
    }
}

/// Drop the accumulated profile (tick counters included). The bench
/// harness calls this at start-up so each run's artifact covers only
/// itself.
pub fn reset() {
    let mut s = crate::lock_unpoisoned(state());
    let hz = s.hz;
    *s = ProfileState::default();
    s.hz = hz;
}

/// The accumulated profile in Brendan-Gregg collapsed-stack format, one
/// `frame;frame;frame count` line per distinct stack, sorted. Empty when
/// nothing was sampled.
pub fn folded_text() -> String {
    let s = crate::lock_unpoisoned(state());
    let mut out = String::new();
    for (stack, count) in &s.folded {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&count.to_string());
        out.push('\n');
    }
    out
}

/// The accumulated profile as JSON: sampler metadata plus the folded
/// stack counts.
pub fn profile_json() -> String {
    // Census before state: taking it the other way round inverts the
    // sampler's (former) state-under-census order. The count may lag the
    // stack table by one registration — it is telemetry, not a ledger.
    let thread_count = registered_threads();
    let s = crate::lock_unpoisoned(state());
    let mut out = String::from("{\"hz\":");
    out.push_str(&format!("{}", s.hz));
    out.push_str(&format!(
        ",\"ticks\":{},\"idle_ticks\":{},\"threads\":{}",
        s.ticks, s.idle_ticks, thread_count
    ));
    out.push_str(",\"stacks\":{");
    for (i, (stack, count)) in s.folded.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        crate::push_json_string(&mut out, stack);
        out.push(':');
        out.push_str(&count.to_string());
    }
    out.push_str("}}");
    out
}

/// A running span-stack sampler; dropping it stops and joins the sampler
/// thread. The accumulated profile survives the drop (readable through
/// [`folded_text`] / [`profile_json`] until the next [`reset`]).
#[derive(Debug)]
pub struct Profiler {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    hz: f64,
}

impl Profiler {
    /// Start sampling at `hz` wake-ups per second (clamped to
    /// `[1, 10000]`). Prefer a rate that is not a divisor of your
    /// workload's periodicity — a prime like 97 or 997 — so samples do
    /// not alias onto the same phase of a periodic loop.
    pub fn start(hz: f64) -> Profiler {
        let hz = if hz.is_finite() {
            hz.clamp(MIN_HZ, MAX_HZ)
        } else {
            MIN_HZ
        };
        crate::lock_unpoisoned(state()).hz = hz;
        let stop = Arc::new(AtomicBool::new(false));
        let sampler_stop = Arc::clone(&stop);
        let interval = Duration::from_secs_f64(1.0 / hz);
        let thread = std::thread::Builder::new()
            .name("skipper-prof-sampler".into())
            .spawn(move || {
                // Sleep in short slices so drop (stop + join) stays prompt
                // even at low rates.
                let slice = interval.min(Duration::from_millis(25));
                loop {
                    if sampler_stop.load(Ordering::Relaxed) {
                        return;
                    }
                    sample_once();
                    let mut waited = Duration::ZERO;
                    while waited < interval {
                        if sampler_stop.load(Ordering::Relaxed) {
                            return;
                        }
                        let step = slice.min(interval - waited);
                        std::thread::sleep(step);
                        waited += step;
                    }
                }
            })
            .ok();
        if thread.is_none() {
            eprintln!("skipper-obs: cannot spawn the profile sampler thread");
        }
        Profiler { stop, thread, hz }
    }

    /// Start a sampler if `SKIPPER_PROF_HZ` names a positive rate; `None`
    /// when unset, zero, or unparseable (profiling must never take a run
    /// down).
    pub fn from_env() -> Option<Profiler> {
        let raw = std::env::var(HZ_ENV).ok()?;
        match raw.trim().parse::<f64>() {
            Ok(hz) if hz > 0.0 => Some(Profiler::start(hz)),
            _ => None,
        }
    }

    /// The (clamped) sampling rate, Hz.
    pub fn hz(&self) -> f64 {
        self.hz
    }
}

impl Drop for Profiler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Profile accumulation is global; serialize the tests that reset it.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        crate::lock_unpoisoned(LOCK.get_or_init(|| Mutex::new(())))
    }

    #[test]
    fn folded_output_is_deterministic_for_a_fixed_stack() {
        let _serial = test_lock();
        let (sink, _handle) = crate::RingBufferSink::new(64);
        let sink_id = crate::add_sink(Box::new(sink));
        reset();
        {
            let _a = crate::span!("prof_fix_outer");
            let _b = crate::span!("prof_fix_inner");
            for _ in 0..5 {
                sample_once();
            }
        }
        let folded = folded_text();
        let count = folded
            .lines()
            .find_map(|l| l.strip_prefix("prof_fix_outer;prof_fix_inner "))
            .and_then(|n| n.parse::<u64>().ok());
        assert_eq!(
            count,
            Some(5),
            "5 samples of a fixed two-frame stack must fold to exactly 5: {folded:?}"
        );
        let json = profile_json();
        assert!(
            json.contains("\"prof_fix_outer;prof_fix_inner\":5"),
            "got: {json}"
        );
        crate::remove_sink(sink_id);
        reset();
    }

    #[test]
    fn sampler_thread_accumulates_and_stops() {
        let _serial = test_lock();
        let (sink, _handle) = crate::RingBufferSink::new(64);
        let sink_id = crate::add_sink(Box::new(sink));
        reset();
        {
            let _span = crate::span!("prof_live_span");
            let profiler = Profiler::start(2_000.0);
            assert_eq!(profiler.hz(), 2_000.0);
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while std::time::Instant::now() < deadline {
                if folded_text().contains("prof_live_span") {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        assert!(
            folded_text().contains("prof_live_span"),
            "sampler never caught the open span: {}",
            profile_json()
        );
        crate::remove_sink(sink_id);
        reset();
    }

    #[test]
    fn disabled_spans_never_touch_the_sampler_machinery() {
        // Runs on its own thread so concurrently-enabled tracing from
        // sibling tests cannot have registered this stack already.
        std::thread::spawn(|| {
            if crate::enabled() {
                return; // another test has a sink installed; inconclusive
            }
            for _ in 0..10_000 {
                let g = crate::span!("quiet_prof");
                drop(g);
            }
            assert!(
                !crate::span::thread_is_registered(),
                "disabled spans must not register the thread"
            );
        })
        .join()
        .expect("disabled-path thread");
    }

    #[test]
    fn disabled_span_overhead_is_negligible() {
        // Min-of-several-runs, matching the EXPERIMENTS.md methodology.
        // The bound is deliberately loose (1 µs/op vs the ~1 ns measured)
        // so a noisy CI runner cannot flake it; the precise numbers live
        // in EXPERIMENTS.md.
        std::thread::spawn(|| {
            if crate::enabled() {
                return;
            }
            const ITERS: u32 = 100_000;
            let mut best = f64::INFINITY;
            for _ in 0..5 {
                let start = std::time::Instant::now();
                for _ in 0..ITERS {
                    let g = crate::span!("quiet_prof");
                    std::hint::black_box(&g);
                }
                best = best.min(start.elapsed().as_secs_f64());
            }
            let per_op_us = best / f64::from(ITERS) * 1e6;
            assert!(
                per_op_us < 1.0,
                "disabled span cost {per_op_us:.4} µs/op exceeds the obs budget"
            );
        })
        .join()
        .expect("overhead thread");
    }

    #[test]
    fn reset_clears_accumulation_but_keeps_hz() {
        let _serial = test_lock();
        {
            let _p = Profiler::start(50.0);
        }
        reset();
        let json = profile_json();
        assert!(json.contains("\"ticks\":0"), "got: {json}");
        assert!(json.contains("\"hz\":50"), "got: {json}");
        assert_eq!(folded_text(), "");
    }
}
