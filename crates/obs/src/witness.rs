//! Runtime lock witness: named lock acquisition with order recording.
//!
//! [`named_lock`] is [`crate::lock_unpoisoned`] plus an explicit identity
//! string — the same `crate.field` identity the static concurrency engine
//! in `skipper-lint` derives for the lock (so the two vocabularies line
//! up by construction; the lint recognizes the literal verbatim).
//!
//! With the `lock_witness` feature enabled (debug/test builds only — the
//! release engine never pays for it), every acquisition while other named
//! locks are held records a directed edge `held -> acquired` into a
//! global edge set. The `lock_witness` integration test drives the
//! worker-pool engine and the serving gateway under load, then asserts
//! every observed runtime edge is reachable in the static lock-order
//! graph: the dynamic witness can only ever shrink the static
//! approximation, never escape it.
//!
//! Deadlock safety inside the witness itself: the edge set lives behind
//! its own leaf mutex that is acquired *after* the witnessed lock and
//! with no other witness code running under it, and recording never
//! touches the metrics registry (the registry's own lock may be the one
//! being witnessed). Publishing the edge count as a gauge is a separate,
//! explicit step — [`publish_witness_metrics`] — called from test
//! harnesses when no named lock is held.

use std::ops::{Deref, DerefMut};
use std::sync::{Mutex, MutexGuard};

/// A [`MutexGuard`] that un-registers its lock identity from the
/// per-thread held stack on drop (a no-op without `lock_witness`).
pub struct NamedGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    _token: imp::Token,
}

impl<T> Deref for NamedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for NamedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Lock `m` (recovering from poisoning) under the identity `name`.
///
/// The mutex is acquired *first*; only then is the acquisition recorded,
/// so a recorded edge always reflects a nesting that actually happened.
pub fn named_lock<'a, T>(name: &'static str, m: &'a Mutex<T>) -> NamedGuard<'a, T> {
    let guard = crate::lock_unpoisoned(m);
    NamedGuard {
        guard,
        _token: imp::acquired(name),
    }
}

/// Every distinct runtime edge `(held, acquired)` observed so far.
/// Always empty without the `lock_witness` feature.
pub fn witness_edges() -> Vec<(&'static str, &'static str)> {
    imp::edges()
}

/// Publish the witness edge count as `obs.lock_witness_edges`.
///
/// Kept out of [`named_lock`] on purpose: setting a gauge takes the
/// metrics registry lock, which may be exactly the lock being witnessed.
/// Call this from a point where no named lock is held (test asserts,
/// shutdown paths). A no-op without the feature.
pub fn publish_witness_metrics() {
    let n = imp::edge_count();
    if n > 0 {
        // Straight to the registry, not the crate::gauge_set emitter: the
        // emitter is a no-op with no sink installed, and it would also
        // re-enter the sinks lock this function exists to stay clear of.
        crate::registry().gauge_set("obs.lock_witness_edges", n as f64);
    }
}

#[cfg(feature = "lock_witness")]
mod imp {
    use std::cell::RefCell;
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Mutex, OnceLock};

    thread_local! {
        /// Named locks this thread currently holds, in acquisition order.
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    static EDGE_COUNT: AtomicUsize = AtomicUsize::new(0);

    fn edge_set() -> &'static Mutex<BTreeSet<(&'static str, &'static str)>> {
        static EDGES: OnceLock<Mutex<BTreeSet<(&'static str, &'static str)>>> = OnceLock::new();
        EDGES.get_or_init(|| Mutex::new(BTreeSet::new()))
    }

    /// Un-registers its name from the held stack on drop.
    pub struct Token {
        name: &'static str,
    }

    impl Drop for Token {
        fn drop(&mut self) {
            HELD.with(|h| {
                let mut held = h.borrow_mut();
                // Guards can drop out of acquisition order: remove the
                // *last* occurrence, not blindly the top of the stack.
                if let Some(at) = held.iter().rposition(|n| *n == self.name) {
                    held.remove(at);
                }
            });
        }
    }

    pub fn acquired(name: &'static str) -> Token {
        HELD.with(|h| {
            let fresh: Vec<&'static str> = {
                let held = h.borrow();
                if held.is_empty() {
                    Vec::new() // Fast path: no nesting, skip the edge lock.
                } else {
                    held.iter().copied().filter(|f| *f != name).collect()
                }
            };
            if !fresh.is_empty() {
                let mut edges = crate::lock_unpoisoned(edge_set());
                let mut new = 0usize;
                for from in fresh {
                    if edges.insert((from, name)) {
                        new += 1;
                    }
                }
                drop(edges);
                if new > 0 {
                    EDGE_COUNT.fetch_add(new, Ordering::Relaxed);
                }
            }
            h.borrow_mut().push(name);
        });
        Token { name }
    }

    pub fn edges() -> Vec<(&'static str, &'static str)> {
        crate::lock_unpoisoned(edge_set()).iter().copied().collect()
    }

    pub fn edge_count() -> usize {
        EDGE_COUNT.load(Ordering::Relaxed)
    }
}

#[cfg(not(feature = "lock_witness"))]
mod imp {
    /// Zero-sized: the whole witness compiles away without the feature.
    pub struct Token;

    #[inline]
    pub fn acquired(_name: &'static str) -> Token {
        Token
    }

    pub fn edges() -> Vec<(&'static str, &'static str)> {
        Vec::new()
    }

    pub fn edge_count() -> usize {
        0
    }
}
