//! Zero-dependency HTTP/1.1 router: method+path → handler registration.
//!
//! This is the plumbing that used to live as a hard-coded `match` inside
//! `serve.rs`, extracted so every HTTP surface in the workspace —
//! `/metrics`, `/cluster`, `/healthz`, and the serving gateway's
//! `/v1/predict` + `/v1/tenants` — shares one server implementation
//! instead of each crate growing its own socket loop.
//!
//! * [`Router`] maps `(method, path)` to a [`Handler`]. Registration is
//!   **scoped**: [`Router::register`] returns a [`RouteGuard`] that
//!   removes the handler on drop. Per-path registrations form a stack —
//!   the latest registration wins, and dropping it restores the previous
//!   one — which replaces the old `set_cluster_provider` /
//!   `clear_cluster_provider` global-slot-with-token scheme.
//! * [`HttpServer`] binds a listener and dispatches each connection to
//!   the router on its own thread, so a handler that blocks (the
//!   gateway's micro-batcher coalescing a batch) does not stall other
//!   requests. Request bodies are read per `Content-Length` (the old
//!   loop supported none), which is what `POST /v1/predict` needs.
//! * [`global_router`] is the process-wide router pre-seeded with the
//!   standard observability routes; `SKIPPER_OBS_ADDR` servers and the
//!   cluster coordinator's `/cluster` table both hang off it.
//!
//! Dispatch semantics match the old endpoint exactly: malformed heads
//! get 400, an unknown path 404, a known path with the wrong method 405,
//! and a panicking handler 500 — the listener keeps serving in every
//! case.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Largest accepted request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Largest accepted request body; bigger payloads get `413`.
const MAX_BODY: usize = 8 * 1024 * 1024;

/// One parsed HTTP request as handed to a [`Handler`].
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, …). `HEAD` dispatches to the
    /// `GET` handler, matching the old endpoint.
    pub method: String,
    /// Path without the query string (`/v1/predict`).
    pub path: String,
    /// Query string after `?`, empty when absent.
    pub query: String,
    /// Raw body bytes (empty unless the client sent `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Body as UTF-8 (lossy): every workspace endpoint speaks JSON/text.
    pub fn body_str(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }
}

/// Response a [`Handler`] returns; helpers cover every status the
/// workspace serves.
#[derive(Debug, Clone)]
pub struct Response {
    /// Numeric status (200, 404, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body.
    pub body: String,
}

const TEXT: &str = "text/plain; charset=utf-8";
const JSON: &str = "application/json";

impl Response {
    /// Build a response with an explicit status and content type.
    pub fn new(status: u16, content_type: &str, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: content_type.to_string(),
            body: body.into(),
        }
    }

    /// `200 OK` with `text/plain`.
    pub fn ok_text(body: impl Into<String>) -> Response {
        Response::new(200, TEXT, body)
    }

    /// `200 OK` with `application/json`.
    pub fn ok_json(body: impl Into<String>) -> Response {
        Response::new(200, JSON, body)
    }

    /// `400 Bad Request` with a JSON error body.
    pub fn bad_request(reason: &str) -> Response {
        Response::new(400, JSON, error_json("bad_request", reason))
    }

    /// `404 Not Found`.
    pub fn not_found() -> Response {
        Response::new(404, TEXT, "not found\n")
    }

    /// `405 Method Not Allowed`.
    pub fn method_not_allowed() -> Response {
        Response::new(405, TEXT, "method not allowed\n")
    }

    /// `429 Too Many Requests` with a typed JSON reason (admission
    /// control: per-tenant rate limit exceeded).
    pub fn too_many_requests(reason: &str) -> Response {
        Response::new(429, JSON, error_json("rate_limited", reason))
    }

    /// `503 Service Unavailable` with a typed JSON reason (load
    /// shedding: queue full or deadline unmeetable).
    pub fn service_unavailable(kind: &str, reason: &str) -> Response {
        Response::new(503, JSON, error_json(kind, reason))
    }

    fn payload_too_large() -> Response {
        Response::new(413, TEXT, "payload too large\n")
    }

    fn internal_error() -> Response {
        Response::new(500, TEXT, "internal error\n")
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }
}

/// Render `{"error":"<kind>","reason":"<reason>"}` with escaping.
fn error_json(kind: &str, reason: &str) -> String {
    let mut out = String::from("{\"error\":");
    crate::push_json_string(&mut out, kind);
    out.push_str(",\"reason\":");
    crate::push_json_string(&mut out, reason);
    out.push('}');
    out
}

/// A route handler. Handlers run on the connection thread; panics are
/// contained to a `500` for that request.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

struct RouteStack {
    /// Registration stack: dispatch uses the **last** entry; dropping a
    /// [`RouteGuard`] removes its entry wherever it sits, so the
    /// previous registration is restored.
    entries: Vec<(u64, Handler)>,
}

/// Method+path → handler table shared by every [`HttpServer`].
pub struct Router {
    routes: Mutex<HashMap<(String, String), RouteStack>>,
    next_token: AtomicU64,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let routes = crate::lock_unpoisoned(&self.routes);
        f.debug_struct("Router")
            .field("routes", &routes.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Default for Router {
    fn default() -> Router {
        Router::new()
    }
}

impl Router {
    /// An empty router (no routes, not even `/healthz`).
    pub fn new() -> Router {
        Router {
            routes: Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(1),
        }
    }

    /// A router pre-seeded with the standard observability routes:
    /// `GET /metrics` (Prometheus text), `GET /metrics.json`,
    /// `GET /profile` (collapsed-stack profile, flamegraph.pl-ready) +
    /// `GET /profile.json`, `GET /healthz` + `GET /` (liveness), and a
    /// default `GET /cluster` answering `{"workers":[]}` until a
    /// coordinator shadows it.
    pub fn with_standard_routes() -> Arc<Router> {
        let router = Arc::new(Router::new());
        router.seed("GET", "/metrics", |_req| {
            Response::new(
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                crate::serve::prometheus_text(&crate::registry().snapshot()),
            )
        });
        router.seed("GET", "/metrics.json", |_req| {
            Response::ok_json(crate::serve::snapshot_json(&crate::registry().snapshot()))
        });
        router.seed("GET", "/profile", |_req| {
            Response::ok_text(crate::profile::folded_text())
        });
        router.seed("GET", "/profile.json", |_req| {
            Response::ok_json(crate::profile::profile_json())
        });
        router.seed("GET", "/healthz", |_req| Response::ok_text("ok\n"));
        router.seed("GET", "/", |_req| Response::ok_text("ok\n"));
        router.seed("GET", "/cluster", |_req| {
            Response::ok_json("{\"workers\":[]}")
        });
        router
    }

    /// Register a permanent route (no guard; lives for the router's
    /// lifetime). Used for the standard seeds.
    fn seed(
        &self,
        method: &str,
        path: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) {
        let mut routes = crate::lock_unpoisoned(&self.routes);
        routes
            .entry((method.to_string(), path.to_string()))
            .or_insert_with(|| RouteStack {
                entries: Vec::new(),
            })
            .entries
            .push((0, Arc::new(handler)));
    }

    /// Register `handler` for `method path`, scoped to the returned
    /// [`RouteGuard`]: the route serves while the guard lives and is
    /// removed when it drops. Registering an already-routed pair shadows
    /// the earlier handler (latest wins) and dropping the guard restores
    /// it — a later registration can never be torn down by an earlier
    /// owner's drop, which is the property the old provider-token scheme
    /// existed to provide.
    #[must_use = "dropping the guard unregisters the route"]
    pub fn register(
        self: &Arc<Self>,
        method: &str,
        path: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> RouteGuard {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let mut routes = crate::lock_unpoisoned(&self.routes);
        routes
            .entry((method.to_string(), path.to_string()))
            .or_insert_with(|| RouteStack {
                entries: Vec::new(),
            })
            .entries
            .push((token, Arc::new(handler)));
        RouteGuard {
            router: Arc::clone(self),
            method: method.to_string(),
            path: path.to_string(),
            token,
        }
    }

    fn unregister(&self, method: &str, path: &str, token: u64) {
        let mut routes = crate::lock_unpoisoned(&self.routes);
        let key = (method.to_string(), path.to_string());
        if let Some(stack) = routes.get_mut(&key) {
            stack.entries.retain(|(t, _)| *t != token);
            if stack.entries.is_empty() {
                routes.remove(&key);
            }
        }
    }

    /// Look up the live handler for `(method, path)`. `HEAD` falls back
    /// to the `GET` handler. Returns `Err(true)` when the path exists
    /// under another method (405) and `Err(false)` when unknown (404).
    fn resolve(&self, method: &str, path: &str) -> Result<Handler, bool> {
        let routes = crate::lock_unpoisoned(&self.routes);
        let lookup = |m: &str| -> Option<Handler> {
            routes
                .get(&(m.to_string(), path.to_string()))
                .and_then(|s| s.entries.last())
                .map(|(_, h)| Arc::clone(h))
        };
        if let Some(h) = lookup(method) {
            return Ok(h);
        }
        if method == "HEAD" {
            if let Some(h) = lookup("GET") {
                return Ok(h);
            }
        }
        let path_known = routes.keys().any(|(_, p)| p == path);
        Err(path_known)
    }

    /// Route one request: 404 for unknown paths, 405 when the path is
    /// registered under a different method, 500 when the handler panics.
    pub fn dispatch(&self, req: &Request) -> Response {
        match self.resolve(&req.method, &req.path) {
            Ok(handler) => {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(req))) {
                    Ok(resp) => resp,
                    Err(_) => Response::internal_error(),
                }
            }
            Err(true) => Response::method_not_allowed(),
            Err(false) => Response::not_found(),
        }
    }
}

/// Scoped route registration; dropping it removes the handler (and
/// restores any registration it was shadowing).
#[must_use = "dropping the guard unregisters the route"]
pub struct RouteGuard {
    router: Arc<Router>,
    method: String,
    path: String,
    token: u64,
}

impl std::fmt::Debug for RouteGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteGuard")
            .field("method", &self.method)
            .field("path", &self.path)
            .finish()
    }
}

impl Drop for RouteGuard {
    fn drop(&mut self) {
        self.router.unregister(&self.method, &self.path, self.token);
    }
}

/// The process-wide router: pre-seeded with the standard routes, shared
/// by `SKIPPER_OBS_ADDR` metrics servers and the cluster coordinator's
/// scoped `/cluster` registration.
pub fn global_router() -> Arc<Router> {
    static GLOBAL: OnceLock<Arc<Router>> = OnceLock::new();
    Arc::clone(GLOBAL.get_or_init(Router::with_standard_routes))
}

/// A listening HTTP/1.1 server dispatching to a [`Router`]. Dropping it
/// stops the accept loop; in-flight connection threads finish their
/// single response and exit.
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (port 0 picks a free port) and serve `router`.
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn bind(addr: &str, router: Arc<Router>) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("skipper-http-serve".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let router = Arc::clone(&router);
                    // One thread per connection: a handler that blocks
                    // (micro-batch coalescing) must not stall the accept
                    // loop or other requests. Panics are contained per
                    // connection.
                    let _ = std::thread::Builder::new()
                        .name("skipper-http-conn".into())
                        .spawn(move || {
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                let _ = handle_connection(stream, &router);
                            }));
                        });
                }
            })?;
        Ok(HttpServer {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // The accept loop blocks in `incoming()`; poke it awake so it
        // sees the stop flag. A failed connect means it already died.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn handle_connection(mut stream: TcpStream, router: &Router) -> std::io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
    // Read until the end of the request head.
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return write_response(&mut stream, &Response::bad_request("head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            if buf.is_empty() {
                // Peer connected and went away (the Drop wake-up does
                // exactly this); nothing to answer.
                return Ok(());
            }
            return write_response(&mut stream, &Response::bad_request("truncated head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut body = buf.split_off(head_end + 4);

    let Some(mut req) = parse_head(&head) else {
        return write_response(&mut stream, &Response::bad_request("malformed request"));
    };
    let content_length = content_length(&head).unwrap_or(0);
    if content_length > MAX_BODY {
        return write_response(&mut stream, &Response::payload_too_large());
    }
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return write_response(&mut stream, &Response::bad_request("truncated body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    req.body = body;

    let head_only = req.method == "HEAD";
    let resp = router.dispatch(&req);
    write_response_with(&mut stream, &resp, head_only)
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parse the request line into a body-less [`Request`]; `None` → 400.
fn parse_head(head: &str) -> Option<Request> {
    let request_line = head.lines().next()?;
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = (parts.next()?, parts.next()?, parts.next()?);
    if !version.starts_with("HTTP/") {
        return None;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Some(Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        query: query.to_string(),
        body: Vec::new(),
    })
}

/// `Content-Length` header value, if present and parseable.
fn content_length(head: &str) -> Option<usize> {
    for line in head.lines().skip(1) {
        let (name, value) = line.split_once(':')?;
        if name.trim().eq_ignore_ascii_case("content-length") {
            return value.trim().parse().ok();
        }
    }
    None
}

fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    write_response_with(stream, resp, false)
}

fn write_response_with(
    stream: &mut TcpStream,
    resp: &Response,
    head_only: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        resp.reason(),
        resp.content_type,
        resp.body.len()
    );
    stream.write_all(head.as_bytes())?;
    if !head_only {
        stream.write_all(resp.body.as_bytes())?;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn http(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        http(
            addr,
            &format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n"),
        )
    }

    #[test]
    fn register_shadow_and_restore() {
        let router = Arc::new(Router::new());
        let a = router.register("GET", "/x", |_| Response::ok_text("a"));
        let req = Request {
            method: "GET".into(),
            path: "/x".into(),
            query: String::new(),
            body: Vec::new(),
        };
        assert_eq!(router.dispatch(&req).body, "a");

        // Latest registration wins...
        let b = router.register("GET", "/x", |_| Response::ok_text("b"));
        assert_eq!(router.dispatch(&req).body, "b");

        // ...and an earlier owner's drop cannot tear down its successor.
        drop(a);
        assert_eq!(router.dispatch(&req).body, "b");

        // Dropping the live registration restores... nothing: 404.
        drop(b);
        assert_eq!(router.dispatch(&req).status, 404);
    }

    #[test]
    fn shadowed_route_is_restored_on_drop() {
        let router = Arc::new(Router::new());
        let base = router.register("GET", "/y", |_| Response::ok_text("base"));
        let req = Request {
            method: "GET".into(),
            path: "/y".into(),
            query: String::new(),
            body: Vec::new(),
        };
        {
            let _shadow = router.register("GET", "/y", |_| Response::ok_text("shadow"));
            assert_eq!(router.dispatch(&req).body, "shadow");
        }
        assert_eq!(router.dispatch(&req).body, "base");
        drop(base);
    }

    #[test]
    fn dispatch_distinguishes_404_405_500() {
        let router = Arc::new(Router::new());
        let _g = router.register("GET", "/only-get", |_| Response::ok_text("ok"));
        let _p = router.register("POST", "/panics", |_| panic!("handler bug"));
        let req = |method: &str, path: &str| Request {
            method: method.into(),
            path: path.into(),
            query: String::new(),
            body: Vec::new(),
        };
        assert_eq!(router.dispatch(&req("GET", "/nope")).status, 404);
        assert_eq!(router.dispatch(&req("POST", "/only-get")).status, 405);
        assert_eq!(router.dispatch(&req("POST", "/panics")).status, 500);
        // HEAD falls back to the GET handler.
        assert_eq!(router.dispatch(&req("HEAD", "/only-get")).status, 200);
    }

    #[test]
    fn server_reads_post_bodies_and_queries() {
        let router = Arc::new(Router::new());
        let _g = router.register("POST", "/echo", |req| {
            Response::ok_text(format!("q={} b={}", req.query, req.body_str()))
        });
        let server = HttpServer::bind("127.0.0.1:0", Arc::clone(&router)).unwrap();
        let body = "hello body";
        let raw = format!(
            "POST /echo?tenant=t1 HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let resp = http(server.addr(), &raw);
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "got: {resp}");
        assert!(resp.contains("q=tenant=t1 b=hello body"), "got: {resp}");
    }

    #[test]
    fn server_handles_concurrent_blocking_handlers() {
        // Two in-flight requests must be served concurrently: the first
        // blocks until the second arrives (rendezvous), which only
        // completes if connections get their own threads.
        use std::sync::mpsc;
        let router = Arc::new(Router::new());
        let (tx, rx) = mpsc::channel::<()>();
        let rx = Mutex::new(rx);
        let pair = Arc::new(Mutex::new(Some(tx)));
        let _g = router.register("GET", "/rendezvous", move |_| {
            let tx = crate::lock_unpoisoned(&pair).take();
            match tx {
                Some(_tx) => {
                    // First arrival: wait for the second (dropping _tx on
                    // timeout keeps the test from hanging forever).
                    let _ = crate::lock_unpoisoned(&rx)
                        .recv_timeout(std::time::Duration::from_secs(10));
                    Response::ok_text("first")
                }
                None => Response::ok_text("second"),
            }
        });
        let server = HttpServer::bind("127.0.0.1:0", Arc::clone(&router)).unwrap();
        let addr = server.addr();
        let t1 = std::thread::spawn(move || get(addr, "/rendezvous"));
        // Give the first request time to park in the handler.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let second = get(addr, "/rendezvous");
        assert!(second.contains("second"), "got: {second}");
        let first = t1.join().unwrap();
        assert!(first.contains("first"), "got: {first}");
    }

    #[test]
    fn standard_routes_include_default_cluster() {
        let router = Router::with_standard_routes();
        let server = HttpServer::bind("127.0.0.1:0", Arc::clone(&router)).unwrap();
        let cluster = get(server.addr(), "/cluster");
        assert!(cluster.contains("{\"workers\":[]}"), "got: {cluster}");
        let health = get(server.addr(), "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "got: {health}");

        // A scoped registration shadows the default...
        {
            let _guard = router.register("GET", "/cluster", |_| {
                Response::ok_json("{\"workers\":[{\"id\":1}]}")
            });
            let live = get(server.addr(), "/cluster");
            assert!(live.contains("\"id\":1"), "got: {live}");
        }
        // ...and dropping it restores the empty table.
        let after = get(server.addr(), "/cluster");
        assert!(after.contains("{\"workers\":[]}"), "got: {after}");
    }

    #[test]
    fn oversized_content_length_is_rejected() {
        let router = Arc::new(Router::new());
        let _g = router.register("POST", "/big", |_| Response::ok_text("ok"));
        let server = HttpServer::bind("127.0.0.1:0", Arc::clone(&router)).unwrap();
        let raw = format!(
            "POST /big HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let resp = http(server.addr(), &raw);
        assert!(resp.starts_with("HTTP/1.1 413"), "got: {resp}");
    }
}
