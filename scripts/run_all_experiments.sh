#!/usr/bin/env bash
# Regenerate every table and figure of the paper (plus the supplementary
# timeline and ablations). Outputs land in results/.
#
# Full run takes tens of minutes; pass --quick for a fast smoke sweep.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK="${1:-}"

BINARIES=(
  fig03_accuracy_memory_vs_t
  fig03_breakdown_vs_t
  fig03_time_vs_batch
  fig04_resnet34_imagenet
  fig07_memory_vs_checkpoints
  table1_accuracy
  fig08_scratch_curves
  fig09_accuracy_vs_t
  fig10_overhead_vs_batch
  fig11_latency_vs_batch
  fig12_memory_vs_batch
  fig13_memory_breakdown
  fig14_memory_vs_timesteps
  fig15_edge_device
  table2_tbptt_lbp
  fig16_tbptt_lbp_sweep
  memory_timeline
  walkthrough
  ablation_sam_policy
  ablation_surrogate
)

cargo build --release -p skipper-bench --bins

for bin in "${BINARIES[@]}"; do
  echo "=== $bin ==="
  cargo run --release -q -p skipper-bench --bin "$bin" -- ${QUICK}
done

echo "All experiments done; see results/."
