//! Cross-crate validation of the memory accounting:
//!
//! * the analytic model (Eqs. 3 and 6) must agree with what the byte-exact
//!   tracker measures during real training — this is what licenses using
//!   the analytic model for the paper-scale projections of Figs. 4 and 14;
//! * the measured peaks must obey the paper's ordering
//!   (skipper < checkpointed < baseline) and scaling laws.

use skipper::core::{AnalyticModel, Method, TrainSession};
use skipper::memprof::{self as mp, Category};
use skipper::snn::{custom_net, lenet5, ModelConfig, Sgd, SpikingNetwork};
use skipper::tensor::{Tensor, XorShiftRng};

fn net() -> SpikingNetwork {
    custom_net(&ModelConfig {
        input_hw: 16,
        width_mult: 0.25,
        ..ModelConfig::default()
    })
}

fn inputs(t: usize, batch: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = XorShiftRng::new(seed);
    (0..t)
        .map(|_| Tensor::rand([batch, 3, 16, 16], &mut rng).map(|x| (x > 0.5) as i32 as f32))
        .collect()
}

/// Peak activation bytes measured while training one batch with `method`.
fn measured_activation_peak(method: Method, t: usize, batch: usize) -> u64 {
    let mut session = TrainSession::builder(net(), method, t)
        .optimizer(Box::new(Sgd::new(1e-3)))
        .workers(1)
        .build()
        .expect("valid method");
    let ins = inputs(t, batch, 42);
    let labels: Vec<usize> = (0..batch).map(|i| i % 10).collect();
    // Warm-up so optimizer state exists, then measure.
    let _ = session.train_batch(&ins, &labels);
    mp::reset_peaks();
    let stats = session.train_batch(&ins, &labels);
    stats.mem.peak(Category::Activations)
}

#[test]
fn analytic_model_matches_measured_bptt_peak() {
    let (t, batch) = (12usize, 4usize);
    let n = net();
    let model = AnalyticModel::new(&n);
    let predicted = model.activation_bytes(&Method::Bptt, t, batch);
    let measured = measured_activation_peak(Method::Bptt, t, batch);
    let ratio = measured as f64 / predicted as f64;
    assert!(
        (0.9..1.3).contains(&ratio),
        "BPTT: predicted {predicted}, measured {measured}, ratio {ratio:.3}"
    );
}

#[test]
fn analytic_model_matches_measured_checkpointed_peak() {
    let (t, batch) = (16usize, 4usize);
    let n = net();
    let model = AnalyticModel::new(&n);
    for c in [2usize, 4] {
        let m = Method::Checkpointed { checkpoints: c };
        let predicted = model.activation_bytes(&m, t, batch);
        let measured = measured_activation_peak(m, t, batch);
        let ratio = measured as f64 / predicted as f64;
        assert!(
            (0.7..1.6).contains(&ratio),
            "C={c}: predicted {predicted}, measured {measured}, ratio {ratio:.3}"
        );
    }
}

#[test]
fn measured_memory_ordering_matches_paper() {
    // skipper < checkpointed < baseline (Figs. 7/12), on a deeper net with
    // a longer horizon for clear separation.
    let t = 24usize;
    let make = || {
        lenet5(&ModelConfig {
            input_hw: 16,
            in_channels: 3,
            width_mult: 0.25,
            ..ModelConfig::default()
        })
    };
    let measure = |method: Method| -> u64 {
        let mut session = TrainSession::builder(make(), method, t)
            .optimizer(Box::new(Sgd::new(1e-3)))
            .workers(1)
            .build()
            .expect("valid method");
        let ins = inputs(t, 2, 7);
        let labels = vec![0usize, 1];
        let _ = session.train_batch(&ins, &labels);
        mp::reset_peaks();
        session
            .train_batch(&ins, &labels)
            .mem
            .peak(Category::Activations)
    };
    // C = 3 keeps 8-step segments, whose Eq. 7 cap (37.5 % on this
    // 5-layer net) still allows substantial skipping.
    let base = measure(Method::Bptt);
    let ck = measure(Method::Checkpointed { checkpoints: 3 });
    let sk = measure(Method::Skipper {
        checkpoints: 3,
        percentile: 37.5,
    });
    assert!(ck * 2 < base, "checkpointing must save ≥2x: {ck} vs {base}");
    assert!(sk < ck, "skipper must undercut checkpointing: {sk} vs {ck}");
}

#[test]
fn baseline_memory_scales_linearly_with_t_and_b() {
    let m8 = measured_activation_peak(Method::Bptt, 8, 2);
    let m16 = measured_activation_peak(Method::Bptt, 16, 2);
    let ratio_t = m16 as f64 / m8 as f64;
    assert!(
        (1.8..2.2).contains(&ratio_t),
        "T doubling should ~double memory: {ratio_t:.2}"
    );
    let b2 = measured_activation_peak(Method::Bptt, 8, 2);
    let b4 = measured_activation_peak(Method::Bptt, 8, 4);
    let ratio_b = b4 as f64 / b2 as f64;
    assert!(
        (1.8..2.2).contains(&ratio_b),
        "B doubling should ~double memory: {ratio_b:.2}"
    );
}

#[test]
fn skipper_compute_savings_show_in_the_op_log() {
    let t = 16usize;
    let flops_of = |method: Method| -> f64 {
        let mut session = TrainSession::builder(net(), method, t)
            .optimizer(Box::new(Sgd::new(1e-3)))
            .workers(1)
            .build()
            .expect("valid method");
        let ins = inputs(t, 2, 9);
        let stats = session.train_batch(&ins, &[0, 1]);
        stats.ops.total_flops()
    };
    let base = flops_of(Method::Bptt);
    let ck = flops_of(Method::Checkpointed { checkpoints: 2 });
    let sk = flops_of(Method::Skipper {
        checkpoints: 2,
        percentile: 60.0,
    });
    // Checkpointing adds one forward pass: expect roughly +25–45 %.
    let overhead = ck / base;
    assert!(
        (1.15..1.55).contains(&overhead),
        "checkpointing FLOP overhead {overhead:.2}"
    );
    // Skipper must fall below plain checkpointing, and below baseline.
    assert!(sk < ck, "skipper {sk:.3e} vs checkpointed {ck:.3e}");
    assert!(sk < base, "skipper {sk:.3e} vs baseline {base:.3e}");
}

#[test]
fn weights_grads_and_optimizer_bytes_are_exact() {
    let n = net();
    let model = AnalyticModel::new(&n);
    mp::reset_all();
    let mut session = TrainSession::builder(net(), Method::Bptt, 4)
        .optimizer(Box::new(skipper::snn::Adam::new(1e-3)))
        .workers(1)
        .build()
        .expect("valid method");
    let ins = inputs(4, 2, 1);
    let _ = session.train_batch(&ins, &[0, 1]);
    let snap = mp::snapshot();
    assert_eq!(snap.live(Category::Weights), model.weight_bytes());
    assert_eq!(snap.live(Category::WeightGrads), model.weight_bytes());
    // Adam: two moments per weight.
    assert_eq!(
        snap.live(Category::OptimizerState),
        2 * model.weight_bytes()
    );
    drop(session);
}
