//! Property-based tests over the core invariants, with randomly generated
//! networks, horizons and method parameters.

use proptest::prelude::*;
use skipper::core::{max_skippable_percentile, percentile, Method, TrainSession};
use skipper::snn::{custom_net, Adam, ModelConfig, Sgd, SpikingNetwork};
use skipper::tensor::{Tensor, XorShiftRng};

fn tiny_net(seed: u64) -> SpikingNetwork {
    custom_net(&ModelConfig {
        input_hw: 8,
        width_mult: 0.25,
        seed,
        ..ModelConfig::default()
    })
}

fn spike_inputs(t: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = XorShiftRng::new(seed);
    (0..t)
        .map(|_| Tensor::rand([2, 3, 8, 8], &mut rng).map(|x| (x > 0.6) as i32 as f32))
        .collect()
}

/// Gradients recovered from a momentum-free SGD update of one batch.
fn grads(method: Method, t: usize, net_seed: u64, data_seed: u64) -> Vec<Vec<f32>> {
    let net = tiny_net(net_seed);
    let before: Vec<Vec<f32>> = net
        .params()
        .iter()
        .map(|p| p.value().data().to_vec())
        .collect();
    let mut session = TrainSession::builder(net, method, t)
        .optimizer(Box::new(Sgd::new(1.0)))
        .build()
        .expect("valid method");
    let inputs = spike_inputs(t, data_seed);
    session.train_batch(&inputs, &[0, 1]);
    let net = session.into_net();
    net.params()
        .iter()
        .zip(before)
        .map(|(p, b)| b.iter().zip(p.value().data()).map(|(x, y)| x - y).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case trains several networks; keep the budget sane
        .. ProptestConfig::default()
    })]

    /// The paper's Section V invariance: checkpointing never changes the
    /// gradient, for any admissible (T, C) and any weight initialisation.
    #[test]
    fn checkpointing_is_gradient_invariant(
        t in 6usize..14,
        c in 1usize..4,
        net_seed in 0u64..1000,
        data_seed in 0u64..1000,
    ) {
        prop_assume!(c <= t / 3); // segment ≥ L_n = 3
        let base = grads(Method::Bptt, t, net_seed, data_seed);
        let ck = grads(Method::Checkpointed { checkpoints: c }, t, net_seed, data_seed);
        for (a, b) in base.iter().zip(&ck) {
            for (x, y) in a.iter().zip(b) {
                prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
            }
        }
    }

    /// Skipper's backward never touches more timesteps than checkpointing,
    /// and the skipped fraction approximates p.
    #[test]
    fn skipper_skips_roughly_p_percent(
        t in 10usize..20,
        p in 10f32..60.0,
        data_seed in 0u64..1000,
    ) {
        // Eq. 7: only admissible percentiles pass build-time validation.
        prop_assume!(p <= max_skippable_percentile(t, 2, 3));
        let method = Method::Skipper { checkpoints: 2, percentile: p };
        let mut session = TrainSession::builder(tiny_net(1), method, t)
            .optimizer(Box::new(Adam::new(1e-3)))
            .build()
            .expect("valid method");
        let inputs = spike_inputs(t, data_seed);
        let stats = session.train_batch(&inputs, &[0, 1]);
        prop_assert_eq!(stats.skipped_steps + stats.recomputed_steps, t);
        let frac = stats.skipped_steps as f64 / t as f64;
        // Nearest-rank percentile over two small segments: allow slack.
        prop_assert!((frac - p as f64 / 100.0).abs() < 0.35, "skipped {frac} vs p {p}");
    }

    /// Nearest-rank percentile is always one of the inputs and monotone
    /// in p.
    #[test]
    fn percentile_properties(
        mut values in prop::collection::vec(-1e3f64..1e3, 1..40),
        p1 in 1f32..99.0,
        p2 in 1f32..99.0,
    ) {
        let v1 = percentile(&values, p1);
        prop_assert!(values.contains(&v1), "percentile must be an element");
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(percentile(&values, lo) <= percentile(&values, hi));
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(v1 >= values[0] && v1 <= values[values.len() - 1]);
    }

    /// Loss reported by any exact-forward method is identical for the same
    /// batch and weights, regardless of C.
    #[test]
    fn forward_loss_is_method_independent(
        t in 6usize..12,
        c in 1usize..4,
        data_seed in 0u64..1000,
    ) {
        prop_assume!(c <= t / 3);
        let loss_of = |m: Method| {
            let mut s = TrainSession::builder(tiny_net(9), m, t)
                .optimizer(Box::new(Adam::new(1e-3)))
                .build()
                .expect("valid method");
            s.train_batch(&spike_inputs(t, data_seed), &[0, 1]).loss
        };
        let a = loss_of(Method::Bptt);
        let b = loss_of(Method::Checkpointed { checkpoints: c });
        prop_assert!((a - b).abs() < 1e-9);
    }

    /// Membrane dynamics invariant: with zero input and no spikes, the
    /// membrane decays geometrically under any leak.
    #[test]
    fn lif_decay_is_geometric(leak in 0.1f32..0.99, u0 in 0.01f32..0.9) {
        use skipper::snn::{lif_step_infer, LifConfig};
        let cfg = LifConfig { leak, threshold: 1.0, surrogate: Default::default() };
        let zero = Tensor::zeros([1]);
        let mut mem = Tensor::from_vec(vec![u0], [1]);
        for k in 1..=5 {
            let (u, o) = lif_step_infer(&cfg, &zero, &mem, &zero);
            prop_assert_eq!(o.data()[0], 0.0);
            let expect = u0 * leak.powi(k);
            prop_assert!((u.data()[0] - expect).abs() < 1e-4);
            mem = u;
        }
    }
}
