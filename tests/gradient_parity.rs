//! Cross-crate correctness: the decomposed training algorithms must agree
//! with monolithic BPTT wherever the paper says they are exact.
//!
//! * Checkpointed training (any `C`, `p = 0`) computes the *same* weight
//!   gradients as baseline BPTT — the paper's Section V is a pure
//!   memory/compute transformation.
//! * TBPTT with `trW = T` degenerates to BPTT.
//! * Skipper with `p = 0` degenerates to plain checkpointing.
//!
//! Verified on a residual network too, so the boundary-gradient handling
//! covers skip connections.

use skipper::core::Method;
use skipper::snn::{custom_net, resnet20, ModelConfig, SpikingNetwork};
use skipper::tensor::{Tensor, XorShiftRng};

fn binary_inputs(t: usize, batch: usize, hw: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = XorShiftRng::new(seed);
    (0..t)
        .map(|_| Tensor::rand([batch, 3, hw, hw], &mut rng).map(|x| (x > 0.6) as i32 as f32))
        .collect()
}

/// Train one batch with `method` and return the per-parameter gradients.
///
/// `TrainSession` zeroes gradients after its optimizer step, so gradients
/// are recovered from the momentum-free SGD weight update: `g = Δw / −lr`.
fn grads_for(
    net_fn: impl Fn() -> SpikingNetwork,
    method: Method,
    inputs: &[Tensor],
) -> Vec<Tensor> {
    let mut net = net_fn();
    run_via_session_grads(&mut net, method, inputs, &[1, 2]);
    net.params().iter().map(|p| p.grad().clone()).collect()
}

/// Like [`grads_for`], but for configurations Eq. 7 flags as unwise
/// (segment shorter than the network depth): structurally sound, so the
/// unvalidated builder path still accepts them.
fn grads_for_unvalidated(
    net_fn: impl Fn() -> SpikingNetwork,
    method: Method,
    inputs: &[Tensor],
) -> Vec<Tensor> {
    let mut net = net_fn();
    let before: Vec<Tensor> = net.params().iter().map(|p| p.value().clone()).collect();
    let lr = 0.5f32;
    let net_owned = std::mem::replace(&mut net, dummy_net());
    let mut session = skipper::core::TrainSession::builder(net_owned, method, inputs.len())
        .optimizer(Box::new(skipper::snn::Sgd::new(lr)))
        .workers(1)
        .build_unvalidated()
        .expect("structurally sound config");
    let _ = session.train_batch(inputs, &[1, 2]);
    let mut trained = take_net(session);
    for (p, b) in trained.params_mut().iter_mut().zip(before) {
        let delta = b.sub(p.value()).scale(1.0 / lr);
        *p.grad_mut() = delta;
    }
    net = trained;
    net.params().iter().map(|p| p.grad().clone()).collect()
}

fn run_via_session_grads(
    net: &mut SpikingNetwork,
    method: Method,
    inputs: &[Tensor],
    labels: &[usize],
) {
    // Record initial weights.
    let before: Vec<Tensor> = net.params().iter().map(|p| p.value().clone()).collect();
    let lr = 0.5f32;
    let net_owned = std::mem::replace(net, dummy_net());
    let mut session = skipper::core::TrainSession::builder(net_owned, method, inputs.len())
        .optimizer(Box::new(skipper::snn::Sgd::new(lr)))
        .build()
        .expect("valid method");
    let _ = session.train_batch(inputs, labels);
    let mut trained = take_net(session);
    // Recover gradients from the SGD update: g = (w_before − w_after)/lr.
    for (p, b) in trained.params_mut().iter_mut().zip(before) {
        let delta = b.sub(p.value()).scale(1.0 / lr);
        *p.grad_mut() = delta;
    }
    *net = trained;
}

fn dummy_net() -> SpikingNetwork {
    custom_net(&ModelConfig {
        input_hw: 8,
        width_mult: 0.25,
        ..ModelConfig::default()
    })
}

fn take_net(session: skipper::core::TrainSession) -> SpikingNetwork {
    session.into_net()
}

fn assert_grads_close(a: &[Tensor], b: &[Tensor], tol: f32, what: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (ga, gb)) in a.iter().zip(b).enumerate() {
        let diff = ga.max_abs_diff(gb);
        assert!(diff < tol, "{what}: param {i} grads differ by {diff}");
    }
}

#[test]
fn checkpointed_equals_bptt_on_custom_net() {
    let make = || dummy_net();
    let inputs = binary_inputs(12, 2, 8, 500);
    let base = grads_for(make, Method::Bptt, &inputs);
    for c in [1usize, 2, 3, 4] {
        let ck = grads_for(make, Method::Checkpointed { checkpoints: c }, &inputs);
        assert_grads_close(&base, &ck, 5e-4, &format!("C={c}"));
    }
}

#[test]
fn checkpointed_equals_bptt_on_residual_network() {
    let make = || {
        resnet20(&ModelConfig {
            input_hw: 8,
            width_mult: 0.125,
            ..ModelConfig::default()
        })
    };
    // T = 8, C = 2 gives 4-step segments on a 19-layer network — Eq. 7
    // flags it, but the gradient equivalence must hold regardless.
    let inputs = binary_inputs(8, 2, 8, 501);
    let base = grads_for(make, Method::Bptt, &inputs);
    let ck = grads_for_unvalidated(make, Method::Checkpointed { checkpoints: 2 }, &inputs);
    assert_grads_close(&base, &ck, 5e-4, "resnet C=2");
}

#[test]
fn tbptt_full_window_equals_bptt() {
    let make = || dummy_net();
    let inputs = binary_inputs(10, 2, 8, 502);
    let base = grads_for(make, Method::Bptt, &inputs);
    let tb = grads_for(make, Method::Tbptt { window: 10 }, &inputs);
    assert_grads_close(&base, &tb, 5e-4, "trW=T");
}

#[test]
fn skipper_p0_equals_checkpointing() {
    let make = || dummy_net();
    let inputs = binary_inputs(12, 2, 8, 503);
    let ck = grads_for(make, Method::Checkpointed { checkpoints: 3 }, &inputs);
    let sk = grads_for(
        make,
        Method::Skipper {
            checkpoints: 3,
            percentile: 0.0,
        },
        &inputs,
    );
    assert_grads_close(&ck, &sk, 1e-7, "p=0");
}

#[test]
fn skipper_gradients_are_close_but_not_identical_at_high_p() {
    let make = || dummy_net();
    let inputs = binary_inputs(12, 2, 8, 504);
    let base = grads_for(make, Method::Bptt, &inputs);
    let sk = grads_for(
        make,
        Method::Skipper {
            checkpoints: 2,
            percentile: 50.0,
        },
        &inputs,
    );
    let total_diff: f32 = base
        .iter()
        .zip(&sk)
        .map(|(a, b)| a.max_abs_diff(b))
        .fold(0.0, f32::max);
    assert!(total_diff > 1e-7, "skipping must change gradients");
    // But the direction should broadly agree: cosine similarity of the
    // concatenated gradients stays positive and large.
    let (mut dot, mut na, mut nb) = (0.0f64, 0.0f64, 0.0f64);
    for (a, b) in base.iter().zip(&sk) {
        for (&x, &y) in a.data().iter().zip(b.data()) {
            dot += (x * y) as f64;
            na += (x * x) as f64;
            nb += (y * y) as f64;
        }
    }
    let cos = dot / (na.sqrt() * nb.sqrt()).max(1e-12);
    assert!(cos > 0.5, "gradient cosine similarity {cos} too low");
}
