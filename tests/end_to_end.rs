//! End-to-end behaviour: training on the synthetic datasets learns, every
//! method runs through the full pipeline, and evaluation agrees across
//! first-pass and taped execution.

use skipper::core::{Method, TrainSession};
use skipper::data::{
    synth_cifar, synth_dvs_gesture, BatchIter, SynthEventConfig, SynthImageConfig,
};
use skipper::snn::{
    calibrate_thresholds, custom_net, lenet5, Adam, Encoder, ModelConfig, PoissonEncoder,
};
use skipper::tensor::XorShiftRng;

#[test]
fn skipper_learns_synthetic_cifar_above_chance() {
    let timesteps = 16;
    let batch = 8;
    let cfg = SynthImageConfig {
        hw: 12,
        num_classes: 4,
        train_per_class: 24,
        test_per_class: 8,
        ..SynthImageConfig::default()
    };
    let (train, test) = synth_cifar(&cfg);
    let net = custom_net(&ModelConfig {
        input_hw: 12,
        num_classes: 4,
        width_mult: 0.5,
        ..ModelConfig::default()
    });
    let mut session = TrainSession::builder(
        net,
        Method::Skipper {
            checkpoints: 2,
            percentile: 40.0,
        },
        timesteps,
    )
    .optimizer(Box::new(Adam::new(2e-3)))
    .build()
    .expect("valid method");
    let encoder = PoissonEncoder::default();
    let mut rng = XorShiftRng::new(3);
    for epoch in 0..4u64 {
        for idx in BatchIter::new_drop_last(train.len(), batch, epoch) {
            let (frames, labels) = train.batch(&idx);
            let spikes = encoder.encode(&frames, timesteps, &mut rng);
            session.train_batch(&spikes, &labels);
        }
    }
    let (mut correct, mut total) = (0usize, 0usize);
    for idx in BatchIter::new(test.len(), batch, 0) {
        let (frames, labels) = test.batch(&idx);
        let spikes = encoder.encode(&frames, timesteps, &mut rng);
        correct += session.eval_batch(&spikes, &labels).correct;
        total += labels.len();
    }
    let acc = correct as f64 / total as f64;
    assert!(acc > 0.45, "test accuracy {acc:.2} vs chance 0.25");
}

#[test]
fn event_pipeline_trains_after_threshold_calibration() {
    let timesteps = 20;
    let cfg = SynthEventConfig {
        hw: 12,
        train_per_class: 4,
        test_per_class: 1,
        ..SynthEventConfig::default()
    };
    let (train, _test) = synth_dvs_gesture(&cfg);
    let mut net = lenet5(&ModelConfig {
        input_hw: 12,
        in_channels: 2,
        num_classes: 11,
        width_mult: 0.25,
        ..ModelConfig::default()
    });
    let (calib, _) = skipper::data::event_batch(&train, &[0, 4, 8, 12], timesteps);
    calibrate_thresholds(&mut net, &calib, 0.08);
    let mut session =
        TrainSession::builder(net, Method::Checkpointed { checkpoints: 4 }, timesteps)
            .optimizer(Box::new(Adam::new(2e-3)))
            .build()
            .expect("valid method");
    // Compare epoch-mean losses (single-batch losses are too noisy on a
    // 44-sample event dataset).
    let mut epoch_means = Vec::new();
    for epoch in 0..4u64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for idx in BatchIter::new_drop_last(train.len(), 4, epoch) {
            let (spikes, labels) = skipper::data::event_batch(&train, &idx, timesteps);
            sum += session.train_batch(&spikes, &labels).loss;
            n += 1;
        }
        epoch_means.push(sum / n as f64);
    }
    assert!(
        epoch_means.last().unwrap() < epoch_means.first().unwrap(),
        "epoch-mean loss must fall: {epoch_means:?}"
    );
}

#[test]
fn all_methods_share_the_full_forward_loss() {
    // The reported loss comes from the full first forward pass, so for one
    // identical batch at identical weights it must agree across methods
    // whose forward is exact (BPTT, checkpointed, skipper).
    let timesteps = 12;
    let make = || {
        custom_net(&ModelConfig {
            input_hw: 8,
            width_mult: 0.25,
            ..ModelConfig::default()
        })
    };
    let mut rng = XorShiftRng::new(5);
    let frames = skipper::tensor::Tensor::rand([2, 3, 8, 8], &mut rng);
    let spikes = PoissonEncoder::default().encode(&frames, timesteps, &mut rng);
    let labels = [0usize, 1];
    let mut losses = Vec::new();
    for method in [
        Method::Bptt,
        Method::Checkpointed { checkpoints: 3 },
        Method::Skipper {
            checkpoints: 3,
            percentile: 25.0, // Eq. 7 cap for T = 12, C = 3, L_n = 3
        },
    ] {
        let mut session = TrainSession::builder(make(), method, timesteps)
            .optimizer(Box::new(Adam::new(1e-3)))
            .build()
            .expect("valid method");
        losses.push(session.train_batch(&spikes, &labels).loss);
    }
    assert!((losses[0] - losses[1]).abs() < 1e-9);
    assert!((losses[0] - losses[2]).abs() < 1e-9);
}

#[test]
fn method_switching_mid_session_works() {
    let timesteps = 12;
    let net = custom_net(&ModelConfig {
        input_hw: 8,
        width_mult: 0.25,
        ..ModelConfig::default()
    });
    let mut session = TrainSession::builder(net, Method::Bptt, timesteps)
        .optimizer(Box::new(Adam::new(1e-3)))
        .build()
        .expect("valid method");
    let mut rng = XorShiftRng::new(6);
    let frames = skipper::tensor::Tensor::rand([2, 3, 8, 8], &mut rng);
    let spikes = PoissonEncoder::default().encode(&frames, timesteps, &mut rng);
    let labels = [2usize, 3];
    let a = session.train_batch(&spikes, &labels);
    session.set_method(Method::Skipper {
        checkpoints: 2,
        percentile: 40.0,
    });
    let b = session.train_batch(&spikes, &labels);
    session.set_method(Method::TbpttLbp {
        window: 6,
        taps: vec![1, 2],
    });
    let c = session.train_batch(&spikes, &labels);
    assert!(a.loss.is_finite() && b.loss.is_finite() && c.loss.is_finite());
    assert!(b.skipped_steps > 0);
}
