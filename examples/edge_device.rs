//! Training on an edge device (paper Section VII-H, Fig. 15).
//!
//! The paper runs VGG5 training on a 4 GiB Jetson Nano, where the ~2 GiB
//! CUDA context leaves very little headroom: baseline BPTT fits only
//! B ≤ 8, checkpointing reaches B = 32 and Skipper B = 64. This example
//! reproduces the experiment against the Jetson device model: the analytic
//! memory model decides what fits, and the GPU latency model (roofline +
//! launch overhead, Nano parameters) gives per-epoch latency.
//!
//! ```text
//! cargo run --release --example edge_device
//! ```

use skipper::core::{AnalyticModel, Method};
use skipper::memprof::DeviceModel;
use skipper::snn::{vgg5, ModelConfig};

fn main() {
    let net = vgg5(&ModelConfig {
        input_hw: 32,
        width_mult: 1.0,
        ..ModelConfig::default()
    });
    let model = AnalyticModel::new(&net);
    let device = DeviceModel::jetson_nano();
    let timesteps = 100; // the paper's VGG5+CIFAR10 configuration

    let methods = [
        Method::Bptt,
        Method::Checkpointed { checkpoints: 4 },
        Method::Skipper {
            checkpoints: 4,
            percentile: 70.0,
        },
    ];

    println!("VGG5 training on {device}, T = {timesteps}");
    println!("\nOverall memory (GiB incl. context) vs batch size (paper Fig. 15a):");
    print!("{:>6}", "B");
    for m in &methods {
        print!(" {:>14}", m.label());
    }
    println!();
    for b in [8usize, 16, 32, 48, 64] {
        print!("{b:>6}");
        for m in &methods {
            let bytes = model.breakdown(m, timesteps, b).total();
            let overall = device.overall_bytes(bytes);
            if device.fits(bytes) {
                print!(" {:>13.2} ", overall as f64 / (1u64 << 30) as f64);
            } else {
                print!(" {:>13} ", "OOM");
            }
        }
        println!();
    }

    println!("\nLargest batch per method:");
    for m in &methods {
        let mut best = 0usize;
        for b in 1..=256 {
            if device.fits(model.breakdown(m, timesteps, b).total()) {
                best = b;
            }
        }
        println!("  {:<14} B_max = {best}", m.label());
    }
    println!("\nExpected shape (paper): baseline stalls around B=8, plain");
    println!("checkpointing reaches ~4x that, and skipper doubles it again,");
    println!("halving the training latency at the same memory footprint.");
}
