//! Building a custom SNN topology from the public building blocks and
//! training it with Skipper — the extensibility path for networks the
//! built-in constructors don't cover.
//!
//! The network below mixes a strided conv stem, one residual block and a
//! dropout-regularised dense head; everything else (state bookkeeping,
//! checkpointing, SAM) works unchanged because it only depends on the
//! `Module` structure.
//!
//! ```text
//! cargo run --release --example custom_topology
//! ```

use skipper::core::{Method, TrainSession};
use skipper::data::{synth_cifar, BatchIter, SynthImageConfig};
use skipper::snn::{
    Adam, Conv2dLayer, Encoder, LifConfig, LinearLayer, Module, ParamStore, PoissonEncoder,
    SpikingNetwork,
};
use skipper::tensor::{Conv2dSpec, Tensor, XorShiftRng};

/// Hand-assemble a small residual SNN for 16x16 RGB inputs, 10 classes.
fn build_network() -> SpikingNetwork {
    let mut params = ParamStore::new();
    let mut rng = XorShiftRng::new(99);
    let lif = LifConfig::with_leak(0.9);
    let mut state_shapes: Vec<Vec<usize>> = Vec::new();
    let mut lif_unit = |shape: Vec<usize>| {
        state_shapes.push(shape);
        skipper::snn::LifUnit {
            cfg: lif,
            state_id: state_shapes.len() - 1,
        }
    };

    // Stem: 3 → 16 channels, stride 2 (16x16 → 8x8).
    let stem = Conv2dLayer::new(
        &mut params,
        "stem",
        3,
        16,
        3,
        Conv2dSpec {
            stride: 2,
            padding: 1,
        },
        true,
        &mut rng,
    );
    let stem_lif = lif_unit(vec![16, 8, 8]);

    // Residual block at 16 channels, 8x8.
    let conv1 = Conv2dLayer::new(
        &mut params,
        "res.conv1",
        16,
        16,
        3,
        Conv2dSpec::padded(1),
        true,
        &mut rng,
    );
    let res_lif1 = lif_unit(vec![16, 8, 8]);
    let conv2 = Conv2dLayer::new(
        &mut params,
        "res.conv2",
        16,
        16,
        3,
        Conv2dSpec::padded(1),
        true,
        &mut rng,
    );
    let res_lif2 = lif_unit(vec![16, 8, 8]);

    // Dense head with dropout.
    let fc = LinearLayer::new(&mut params, "fc", 16 * 4 * 4, 64, true, &mut rng);
    let fc_lif = lif_unit(vec![64]);
    let readout = LinearLayer::new(&mut params, "readout", 64, 10, true, &mut rng);

    let modules = vec![
        Module::ConvLif {
            conv: stem,
            lif: stem_lif,
            pool: None,
        },
        Module::Residual {
            conv1,
            lif1: res_lif1,
            conv2,
            shortcut: None, // same shape: identity shortcut
            lif2: res_lif2,
        },
        Module::Pool(2), // 8x8 → 4x4
        Module::Flatten,
        Module::LinearLif {
            lin: fc,
            lif: fc_lif,
            dropout: Some(0.1),
        },
        Module::Output(readout),
    ];
    SpikingNetwork::from_parts(
        "custom-residual",
        modules,
        params,
        state_shapes,
        vec![3, 16, 16],
        10,
    )
}

fn main() {
    let timesteps = 20;
    let batch = 8;
    let net = build_network();
    println!(
        "custom network: {} spiking layers, {} params, per-step tape {} elems/sample",
        net.spiking_layer_count(),
        net.param_scalars(),
        net.per_step_graph_elems_per_sample(),
    );
    let method = Method::Skipper {
        checkpoints: 2,
        percentile: 40.0,
    };
    method.validate(&net, timesteps).expect("Eq. 7 satisfied");

    let (train, test) = synth_cifar(&SynthImageConfig {
        train_per_class: 16,
        test_per_class: 4,
        ..SynthImageConfig::default()
    });
    let mut session = TrainSession::builder(net, method, timesteps)
        .optimizer(Box::new(Adam::new(2e-3)))
        .build()
        .expect("valid method");
    let encoder = PoissonEncoder::default();
    let mut rng = XorShiftRng::new(5);
    for epoch in 0..3u64 {
        let mut correct = 0usize;
        let mut seen = 0usize;
        for idx in BatchIter::new_drop_last(train.len(), batch, epoch) {
            let (frames, labels): (Tensor, Vec<usize>) = train.batch(&idx);
            let spikes = encoder.encode(&frames, timesteps, &mut rng);
            let stats = session.train_batch(&spikes, &labels);
            correct += stats.correct;
            seen += labels.len();
        }
        let (mut test_correct, mut test_seen) = (0usize, 0usize);
        for idx in BatchIter::new(test.len(), batch, 0) {
            let (frames, labels) = test.batch(&idx);
            let spikes = encoder.encode(&frames, timesteps, &mut rng);
            test_correct += session.eval_batch(&spikes, &labels).correct;
            test_seen += labels.len();
        }
        println!(
            "epoch {epoch}: train acc {:>5.1}%, test acc {:>5.1}%",
            100.0 * correct as f64 / seen as f64,
            100.0 * test_correct as f64 / test_seen as f64,
        );
    }
}
