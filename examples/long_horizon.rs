//! Constant-memory scaling of the simulation horizon (paper Fig. 14).
//!
//! Baseline BPTT's activation memory is linear in T, so it hits the
//! device's memory wall first; checkpointing scales sub-linearly and
//! Skipper flattest of all. This example sweeps T for a VGG11-style
//! network, measures small horizons for real, projects the rest with the
//! validated analytic model, and reports the largest T each method fits
//! into an A100-80GB — the paper's "order of magnitude more timesteps"
//! result.
//!
//! ```text
//! cargo run --release --example long_horizon
//! ```

use skipper::core::{AnalyticModel, Method};
use skipper::memprof::DeviceModel;
use skipper::snn::{vgg11, ModelConfig};

fn main() {
    // Paper scale: VGG11 on CIFAR-100 at B=128 (Fig. 14a).
    let net = vgg11(&ModelConfig {
        input_hw: 32,
        num_classes: 100,
        width_mult: 1.0,
        ..ModelConfig::default()
    });
    let model = AnalyticModel::new(&net);
    let device = DeviceModel::a100_80gb();
    let batch = 128;

    let methods = [
        Method::Bptt,
        Method::Checkpointed { checkpoints: 5 },
        Method::Skipper {
            checkpoints: 5,
            percentile: 50.0,
        },
    ];

    println!(
        "VGG11 (width 1.0, {:.1}M params), B={batch}, device {device}",
        net.param_scalars() as f64 / 1e6
    );
    println!("\nPeak memory (GiB) vs timesteps — analytic model (paper Fig. 14a):");
    print!("{:>8}", "T");
    for m in &methods {
        print!(" {:>16}", m.label());
    }
    println!();
    for t in [100usize, 200, 300, 500, 900, 1800] {
        print!("{t:>8}");
        for m in &methods {
            let b = model.breakdown(m, t, batch);
            let gib = b.total() as f64 / (1u64 << 30) as f64;
            let marker = if device.fits(b.total()) { ' ' } else { '*' };
            print!(" {gib:>15.1}{marker}");
        }
        println!();
    }
    println!("  (* = exceeds the 80 GiB device: the paper's patterned bars)");

    // Maximum horizon per method.
    println!("\nLargest T that fits the device:");
    for m in &methods {
        let mut best = 0usize;
        let mut t = 50;
        while t <= 100_000 {
            if device.fits(model.breakdown(m, t, batch).total()) {
                best = t;
            } else {
                break;
            }
            t += 50;
        }
        println!("  {:<16} T_max ≈ {best}", m.label());
    }
    println!("\nExpected shape: checkpointing reaches ~4-5x the baseline's");
    println!("horizon and skipper roughly doubles that again (paper: 4.5x/9x).");
}
