//! Event-based action recognition: LeNet on synthetic DVS-Gesture.
//!
//! The paper's Section VII trains a 5-conv LeNet on the DVS-Gesture
//! dataset (hand gestures recorded with a DVS-128 event camera) from
//! scratch with T = 400. This example runs the scaled equivalent: the
//! synthetic gesture generator produces address-event streams whose
//! class is encoded in the motion, binned into 2-polarity spike frames.
//!
//! ```text
//! cargo run --release --example dvs_gesture
//! ```

use skipper::core::{EpochStats, Method, TrainSession};
use skipper::data::{event_batch, synth_dvs_gesture, BatchIter, SynthEventConfig};
use skipper::snn::{calibrate_thresholds, lenet5, Adam, LifConfig, ModelConfig};

fn main() {
    let timesteps = 32;
    let batch_size = 6;
    let epochs = 4;

    let data_cfg = SynthEventConfig {
        hw: 16,
        train_per_class: 8,
        test_per_class: 3,
        ..SynthEventConfig::default()
    };
    let (train, test) = synth_dvs_gesture(&data_cfg);

    let mut net = lenet5(&ModelConfig {
        input_hw: data_cfg.hw,
        in_channels: 2, // DVS polarity channels
        num_classes: train.num_classes(),
        width_mult: 0.5,
        lif: LifConfig::with_leak(0.85),
        ..ModelConfig::default()
    });
    // Event input is sparse; balance the firing thresholds on a small
    // calibration batch so activity reaches the deep layers (Diehl et al.,
    // the paper's ref. [18]).
    let (calib, _) = event_batch(&train, &[0, 8, 16, 24, 32, 40], timesteps);
    let thresholds = calibrate_thresholds(&mut net, &calib, 0.08);
    println!(
        "calibrated thresholds: {:?}",
        thresholds
            .iter()
            .map(|t| (t * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!(
        "LeNet ({} spiking layers, {} params) on synthetic DVS-Gesture (11 gestures)",
        net.spiking_layer_count(),
        net.param_scalars()
    );

    // The paper trains this workload with skipper at C=10, p=70 (Table I);
    // scale C to the shorter horizon, keep the skipping aggressive.
    let method = Method::Skipper {
        checkpoints: 2, // segment 16 ≥ L_n = 5, Eq. 7 bound ≈ 69 %
        percentile: 50.0,
    };
    method.validate(&net, timesteps).expect("valid config");
    println!("method: {method}, T = {timesteps}, B = {batch_size}\n");

    let mut session = TrainSession::builder(net, method, timesteps)
        .optimizer(Box::new(Adam::new(2e-3)))
        .build()
        .expect("valid method");
    for epoch in 0..epochs {
        let mut stats = EpochStats::default();
        for idx in BatchIter::new_drop_last(train.len(), batch_size, epoch as u64) {
            let (spikes, labels) = event_batch(&train, &idx, timesteps);
            stats.absorb(&session.train_batch(&spikes, &labels), None);
        }
        let (mut correct, mut total) = (0usize, 0usize);
        for idx in BatchIter::new(test.len(), batch_size, 0) {
            let (spikes, labels) = event_batch(&test, &idx, timesteps);
            correct += session.eval_batch(&spikes, &labels).correct;
            total += labels.len();
        }
        println!(
            "epoch {epoch}: train loss {:.3}, train acc {:>5.1}%, val acc {:>5.1}%, skipped {}/{} steps",
            stats.mean_loss(),
            100.0 * stats.accuracy(),
            100.0 * correct as f64 / total as f64,
            stats.skipped_steps,
            stats.skipped_steps + stats.recomputed_steps,
        );
    }
    println!("\nAs in the paper's Fig. 8, training from scratch with skipper");
    println!("converges like the baseline while skipping low-activity steps.");
}
