//! Quickstart: train one SNN three ways — baseline BPTT, activation
//! checkpointing, and Skipper — on a synthetic CIFAR-style task, and
//! compare accuracy, peak activation memory and wall time.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use skipper::core::{EpochStats, Method, TrainSession};
use skipper::data::{synth_cifar, BatchIter, SynthImageConfig};
use skipper::memprof::{Category, DeviceModel, LatencyModel};
use skipper::snn::{custom_net, Adam, Encoder, ModelConfig, PoissonEncoder};
use skipper::tensor::XorShiftRng;

fn main() {
    let timesteps = 24;
    let batch_size = 8;
    let epochs = 3;

    let data_cfg = SynthImageConfig {
        hw: 12,
        train_per_class: 16,
        test_per_class: 4,
        ..SynthImageConfig::default()
    };
    let (train, test) = synth_cifar(&data_cfg);
    let encoder = PoissonEncoder::default();

    let methods = [
        Method::Bptt,
        Method::Checkpointed { checkpoints: 4 },
        Method::Skipper {
            checkpoints: 4,
            percentile: 40.0,
        },
    ];

    println!("Training custom-Net (conv3+lin1) on synthetic CIFAR-10");
    println!("T = {timesteps}, B = {batch_size}, {epochs} epochs\n");
    let gpu = LatencyModel::new(DeviceModel::a100_80gb());
    println!(
        "{:<14} {:>9} {:>9} {:>12} {:>10} {:>11} {:>9}",
        "method", "train", "test", "act. peak", "wall", "GPU model", "skipped"
    );

    for method in methods {
        let net = custom_net(&ModelConfig {
            input_hw: data_cfg.hw,
            width_mult: 0.5,
            ..ModelConfig::default()
        });
        method
            .validate(&net, timesteps)
            .expect("method configuration is valid for this network");
        let mut session = TrainSession::builder(net, method.clone(), timesteps)
            .optimizer(Box::new(Adam::new(2e-3)))
            .build()
            .expect("valid method");

        let mut last_epoch = EpochStats::default();
        let mut peak_act = 0u64;
        for epoch in 0..epochs {
            let mut stats = EpochStats::default();
            let mut rng = XorShiftRng::new(1000 + epoch as u64);
            for idx in BatchIter::new_drop_last(train.len(), batch_size, epoch as u64) {
                let (frames, labels) = train.batch(&idx);
                let spikes = encoder.encode(&frames, timesteps, &mut rng);
                let b = session.train_batch(&spikes, &labels);
                peak_act = peak_act.max(b.mem.peak(Category::Activations));
                stats.absorb(&b, Some(&gpu));
            }
            last_epoch = stats;
        }

        // Test accuracy.
        let mut rng = XorShiftRng::new(5);
        let (mut correct, mut total) = (0usize, 0usize);
        for idx in BatchIter::new(test.len(), batch_size, 0) {
            let (frames, labels) = test.batch(&idx);
            let spikes = encoder.encode(&frames, timesteps, &mut rng);
            correct += session.eval_batch(&spikes, &labels).correct;
            total += labels.len();
        }

        println!(
            "{:<14} {:>8.1}% {:>8.1}% {:>9} KiB {:>8.2}s {:>9.0}ms {:>8}",
            method.label(),
            100.0 * last_epoch.accuracy(),
            100.0 * correct as f64 / total as f64,
            peak_act / 1024,
            last_epoch.wall.as_secs_f64(),
            last_epoch.modeled_s * 1e3,
            last_epoch.skipped_steps,
        );
    }

    println!("\nExpected shape (paper Figs. 7/10/12): checkpointing cuts the");
    println!("activation peak several-fold at ~30% extra time; Skipper keeps");
    println!("the memory win, removes the overhead, and matches accuracy.");
}
