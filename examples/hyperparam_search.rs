//! Concurrent hyper-parameter search under a fixed memory budget — the
//! paper's third use for the freed memory (Section IV: "to enable multiple
//! simultaneous trainings on the GPU, often useful in hyper-parameter
//! search/tuning").
//!
//! The analytic model prices one training instance per method; the budget
//! then caps how many learning-rate candidates can run side by side.
//! Skipper fits several times more concurrent trials, so the same sweep
//! finishes in correspondingly fewer waves.
//!
//! ```text
//! cargo run --release --example hyperparam_search
//! ```

use skipper::core::{AnalyticModel, Method, TrainSession};
use skipper::data::{synth_cifar, BatchIter, SynthImageConfig};
use skipper::snn::{custom_net, Adam, Encoder, ModelConfig, PoissonEncoder};
use skipper::tensor::XorShiftRng;

fn main() {
    let timesteps = 24;
    let batch = 8;
    let budget_bytes: u64 = 96 << 20; // pretend the device has 96 MiB free
    let candidates = [3e-4f32, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2];

    let model_cfg = ModelConfig {
        input_hw: 12,
        width_mult: 0.5,
        ..ModelConfig::default()
    };
    let methods = [
        Method::Bptt,
        Method::Checkpointed { checkpoints: 4 },
        Method::Skipper {
            checkpoints: 4,
            percentile: 50.0,
        },
    ];

    println!(
        "Hyper-parameter search: {} learning rates, memory budget {} MiB\n",
        candidates.len(),
        budget_bytes >> 20
    );
    println!(
        "{:<16} {:>16} {:>18} {:>8}",
        "method", "bytes/instance", "concurrent trials", "waves"
    );
    let probe = custom_net(&model_cfg);
    let analytic = AnalyticModel::new(&probe);
    for m in &methods {
        let per_instance = analytic.breakdown(m, timesteps, batch).total();
        let concurrent = (budget_bytes / per_instance.max(1)).max(1) as usize;
        let waves = candidates.len().div_ceil(concurrent);
        println!(
            "{:<16} {:>12} KiB {:>18} {:>8}",
            m.label(),
            per_instance / 1024,
            concurrent.min(candidates.len()),
            waves
        );
    }

    // Actually run the search with the skipper configuration.
    println!("\nRunning the sweep with skipper (C=4, p=50):");
    let (train, test) = synth_cifar(&SynthImageConfig {
        hw: 12,
        train_per_class: 16,
        test_per_class: 4,
        ..SynthImageConfig::default()
    });
    let encoder = PoissonEncoder::default();
    let mut best = (0.0f64, 0.0f32);
    for &lr in &candidates {
        let net = custom_net(&model_cfg);
        let mut session = TrainSession::builder(
            net,
            Method::Skipper {
                checkpoints: 4,
                percentile: 50.0,
            },
            timesteps,
        )
        .optimizer(Box::new(Adam::new(lr)))
        .build()
        .expect("valid method");
        let mut rng = XorShiftRng::new(17);
        for epoch in 0..2u64 {
            for idx in BatchIter::new_drop_last(train.len(), batch, epoch) {
                let (frames, labels) = train.batch(&idx);
                let spikes = encoder.encode(&frames, timesteps, &mut rng);
                session.train_batch(&spikes, &labels);
            }
        }
        let (mut correct, mut total) = (0usize, 0usize);
        for idx in BatchIter::new(test.len(), batch, 0) {
            let (frames, labels) = test.batch(&idx);
            let spikes = encoder.encode(&frames, timesteps, &mut rng);
            correct += session.eval_batch(&spikes, &labels).correct;
            total += labels.len();
        }
        let acc = correct as f64 / total as f64;
        println!("  lr {lr:<8}: test acc {:>5.1}%", 100.0 * acc);
        if acc > best.0 {
            best = (acc, lr);
        }
    }
    println!(
        "\nbest: lr = {} at {:.1}% test accuracy",
        best.1,
        100.0 * best.0
    );
}
